package vp

import (
	"testing"
	"testing/quick"

	"github.com/vpir-sim/vpir/internal/isa"
)

func small(s Scheme) Config {
	return Config{Entries: 64, Ways: 4, Scheme: s, ConfThreshold: 2, ConfMax: 3}
}

func TestNoPredictionWhenCold(t *testing.T) {
	vt := New(DefaultConfig(Magic))
	if _, ok := vt.Predict(0x400000, 5, true, 0); ok {
		t.Error("cold table must not predict")
	}
}

func TestConfidenceGatesPrediction(t *testing.T) {
	vt := New(small(Magic))
	pc := uint32(0x400000)
	vt.Train(pc, 42, 0, false) // conf = 1 < threshold
	if _, ok := vt.Predict(pc, 42, true, 0); ok {
		t.Error("conf=1 must not predict")
	}
	vt.Train(pc, 42, 0, false) // conf = 2
	v, ok := vt.Predict(pc, 42, true, 0)
	if !ok || v != 42 {
		t.Errorf("predict = %d, %v", v, ok)
	}
}

func TestMagicOracleSelectsCorrectInstance(t *testing.T) {
	vt := New(small(Magic))
	pc := uint32(0x400000)
	// Build two confident instances: 10 (very confident) and 20.
	for i := 0; i < 3; i++ {
		vt.Train(pc, 10, 0, false)
	}
	for i := 0; i < 2; i++ {
		vt.Train(pc, 20, 0, false)
	}
	// Oracle says 20: magic must pick 20 even though 10 is more confident.
	if v, ok := vt.Predict(pc, 20, true, 0); !ok || v != 20 {
		t.Errorf("oracle selection = %d, %v; want 20", v, ok)
	}
	// Oracle says 99 (not buffered): falls back to most confident (10).
	if v, ok := vt.Predict(pc, 99, true, 0); !ok || v != 10 {
		t.Errorf("fallback = %d, %v; want 10", v, ok)
	}
	// Wrong-path (no oracle): most confident.
	if v, ok := vt.Predict(pc, 0, false, 0); !ok || v != 10 {
		t.Errorf("no-oracle = %d, %v; want 10", v, ok)
	}
}

func TestMagicBuffersUniqueInstances(t *testing.T) {
	vt := New(small(Magic))
	pc := uint32(0x400000)
	for _, v := range []isa.Word{1, 2, 3, 4} {
		vt.Train(pc, v, 0, false)
		vt.Train(pc, v, 0, false)
	}
	got := vt.Instances(pc)
	if len(got) != 4 {
		t.Fatalf("instances = %v, want 4 values", got)
	}
	seen := map[isa.Word]bool{}
	for _, v := range got {
		seen[v] = true
	}
	for _, v := range []isa.Word{1, 2, 3, 4} {
		if !seen[v] {
			t.Errorf("instance %d missing from %v", v, got)
		}
	}
	// Training an existing value must not duplicate it.
	vt.Train(pc, 3, 0, false)
	if got := vt.Instances(pc); len(got) != 4 {
		t.Errorf("duplicate instance created: %v", got)
	}
}

func TestMagicEvictsLRUInstance(t *testing.T) {
	vt := New(small(Magic))
	pc := uint32(0x400000)
	for _, v := range []isa.Word{1, 2, 3, 4} {
		vt.Train(pc, v, 0, false)
	}
	vt.Train(pc, 1, 0, false) // touch 1, making 2 the LRU
	vt.Train(pc, 5, 0, false) // must evict 2
	seen := map[isa.Word]bool{}
	for _, v := range vt.Instances(pc) {
		seen[v] = true
	}
	if seen[2] {
		t.Errorf("LRU instance 2 not evicted: %v", vt.Instances(pc))
	}
	if !seen[1] || !seen[5] {
		t.Errorf("wrong eviction: %v", vt.Instances(pc))
	}
}

func TestWrongPredictionDecrementsConfidence(t *testing.T) {
	vt := New(small(Magic))
	pc := uint32(0x400000)
	vt.Train(pc, 10, 0, false)
	vt.Train(pc, 10, 0, false) // conf(10)=2, predictable
	// Now the instruction produces 11, and we had predicted 10.
	vt.Train(pc, 11, 10, true)
	// 10's confidence dropped to 1: no longer predictable by fallback.
	if v, ok := vt.Predict(pc, 99, true, 0); ok {
		t.Errorf("predicted %d from low-confidence instances", v)
	}
}

func TestLVPSingleInstance(t *testing.T) {
	vt := New(small(LVP))
	pc := uint32(0x400000)
	vt.Train(pc, 10, 0, false)
	vt.Train(pc, 10, 0, false)
	if v, ok := vt.Predict(pc, 0, false, 0); !ok || v != 10 {
		t.Errorf("lvp predict = %d, %v", v, ok)
	}
	// New value replaces the old one (last value semantics).
	vt.Train(pc, 20, 10, true)
	if got := vt.Instances(pc); len(got) != 1 || got[0] != 20 {
		t.Errorf("lvp instances = %v, want [20]", got)
	}
	// Confidence dropped to 1: not predictable until it repeats.
	if _, ok := vt.Predict(pc, 0, false, 0); ok {
		t.Error("lvp must lose confidence after a change")
	}
	vt.Train(pc, 20, 0, false)
	if v, ok := vt.Predict(pc, 0, false, 0); !ok || v != 20 {
		t.Errorf("lvp re-learned = %d, %v", v, ok)
	}
}

func TestSetConflictEviction(t *testing.T) {
	// 2 sets * 4 ways = 8 entries; pcs stride 8 bytes land in alternating sets.
	vt := New(Config{Entries: 8, Ways: 4, Scheme: Magic, ConfThreshold: 2, ConfMax: 3})
	// Five different pcs mapping to the same set: one must be evicted.
	for i := 0; i < 5; i++ {
		pc := uint32(0x400000 + i*8)
		vt.Train(pc, isa.Word(i), 0, false)
		vt.Train(pc, isa.Word(i), 0, false)
	}
	live := 0
	for i := 0; i < 5; i++ {
		pc := uint32(0x400000 + i*8)
		if _, ok := vt.Predict(pc, isa.Word(i), true, 0); ok {
			live++
		}
	}
	if live != 4 {
		t.Errorf("live instances in set = %d, want 4", live)
	}
	if s := vt.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
}

func TestStatsCounting(t *testing.T) {
	vt := New(small(Magic))
	pc := uint32(0x400000)
	vt.Predict(pc, 0, false, 0)
	vt.Train(pc, 1, 0, false)
	vt.Train(pc, 1, 0, false)
	vt.Predict(pc, 1, true, 0)
	s := vt.Stats()
	if s.Lookups != 2 || s.Predictions != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestReset(t *testing.T) {
	vt := New(small(LVP))
	vt.Train(0x400000, 1, 0, false)
	vt.Train(0x400000, 1, 0, false)
	vt.Reset(vt.Config())
	if _, ok := vt.Predict(0x400000, 0, false, 0); ok {
		t.Error("prediction survives reset")
	}
	if s := vt.Stats(); s.Lookups != 1 {
		t.Errorf("stats not reset: %+v", s)
	}
}

// Property: after two trainings with the same value, Magic with the oracle
// equal to that value always predicts it, for arbitrary pcs and values.
func TestTrainPredictProperty(t *testing.T) {
	vt := New(DefaultConfig(Magic))
	f := func(pc uint32, v uint64) bool {
		pc &= 0x00FF_FFFC
		vt.Train(pc, isa.Word(v), 0, false)
		vt.Train(pc, isa.Word(v), 0, false)
		got, ok := vt.Predict(pc, isa.Word(v), true, 0)
		return ok && got == isa.Word(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStridePredictor(t *testing.T) {
	vt := New(Config{Entries: 64, Ways: 4, Scheme: Stride, ConfThreshold: 2, ConfMax: 3})
	pc := uint32(0x400000)
	// Train on 10, 14, 18: stride 4 established.
	vt.Train(pc, 10, 0, false)
	vt.Train(pc, 14, 0, false)
	if _, ok := vt.Predict(pc, 0, false, 0); ok {
		t.Error("stride must not predict before confidence builds")
	}
	vt.Train(pc, 18, 0, false) // stride 4 confirmed twice: conf >= 2
	v, ok := vt.Predict(pc, 0, false, 0)
	if !ok || v != 22 {
		t.Errorf("stride predict = %d, %v; want 22", v, ok)
	}
	// A break in the stride drops confidence and relearns.
	vt.Train(pc, 100, 22, true)
	if _, ok := vt.Predict(pc, 0, false, 0); ok {
		t.Error("stride must lose confidence after a break")
	}
	vt.Train(pc, 104, 0, false)
	vt.Train(pc, 108, 0, false)
	if v, ok := vt.Predict(pc, 0, false, 0); !ok || v != 112 {
		t.Errorf("stride relearn = %d, %v; want 112", v, ok)
	}
}

func TestStrideCapturesWhatLVPCannot(t *testing.T) {
	// A pure stride walker: LVP never predicts correctly, stride always
	// does after warmup. This is the "derivable" class of Figure 8.
	st := New(Config{Entries: 64, Ways: 4, Scheme: Stride, ConfThreshold: 2, ConfMax: 3})
	lv := New(Config{Entries: 64, Ways: 4, Scheme: LVP, ConfThreshold: 2, ConfMax: 3})
	pc := uint32(0x400000)
	var stOK, lvOK int
	for i := 0; i < 50; i++ {
		actual := isa.Word(i * 8)
		if v, ok := st.Predict(pc, actual, true, 0); ok && v == actual {
			stOK++
		}
		if v, ok := lv.Predict(pc, actual, true, 0); ok && v == actual {
			lvOK++
		}
		st.Train(pc, actual, 0, false)
		lv.Train(pc, actual, 0, false)
	}
	if stOK < 40 {
		t.Errorf("stride correct %d/50, want >= 40", stOK)
	}
	if lvOK != 0 {
		t.Errorf("lvp correct %d/50 on a pure stride, want 0", lvOK)
	}
}

func TestStrideConstantSequence(t *testing.T) {
	// A constant value is a zero-stride sequence: stride handles it too.
	vt := New(Config{Entries: 64, Ways: 4, Scheme: Stride, ConfThreshold: 2, ConfMax: 3})
	pc := uint32(0x400000)
	for i := 0; i < 3; i++ {
		vt.Train(pc, 7, 0, false)
	}
	if v, ok := vt.Predict(pc, 0, false, 0); !ok || v != 7 {
		t.Errorf("constant via stride = %d, %v", v, ok)
	}
}
