// Package prog defines the loadable program image produced by the assembler
// and consumed by the functional emulator and the timing simulator.
package prog

import (
	"fmt"

	"github.com/vpir-sim/vpir/internal/isa"
)

// Standard memory layout. The layout mirrors the classic MIPS/SimpleScalar
// convention: text low, static data in the middle, stack growing down from
// high memory.
const (
	TextBase  uint32 = 0x0040_0000
	DataBase  uint32 = 0x1000_0000
	StackTop  uint32 = 0x7FFF_F000
	HeapBase  uint32 = 0x2000_0000 // available to workloads for scratch space
	CacheLine        = 32          // bytes, per Table 1
)

// Program is a fully linked program image.
type Program struct {
	Name     string
	Entry    uint32            // initial PC
	Text     []uint32          // instruction words, loaded at TextBase
	Data     []byte            // static data, loaded at DataBase
	Symbols  map[string]uint32 // label -> address
	SrcLines map[uint32]int    // text address -> source line (for diagnostics)
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint32 { return TextBase + uint32(4*len(p.Text)) }

// InText reports whether addr falls inside the text segment.
func (p *Program) InText(addr uint32) bool {
	return addr >= TextBase && addr < p.TextEnd()
}

// FetchWord returns the instruction word at addr, or 0 (which decodes to an
// invalid instruction) when addr is outside the text segment.
func (p *Program) FetchWord(addr uint32) uint32 {
	if !p.InText(addr) || addr&3 != 0 {
		return 0
	}
	return p.Text[(addr-TextBase)/4]
}

// Symbol returns the address of a label.
func (p *Program) Symbol(name string) (uint32, error) {
	a, ok := p.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("prog: no symbol %q in %s", name, p.Name)
	}
	return a, nil
}

// MustSymbol is Symbol but panics on a missing label.
//
// It is for tests and workload *construction* only — code paths where the
// label is statically known to exist and a panic is a programming error.
// Production load paths (workload.Workload.Load, the harness Runner, the
// command-line tools) must use Symbol and propagate the error: a missing
// symbol there is bad input, not a bug, and long simulation campaigns must
// degrade to a per-run error instead of crashing the fleet. (The harness
// additionally converts stray panics in a run to errors, but that is a
// backstop, not an excuse.)
func (p *Program) MustSymbol(name string) uint32 {
	a, err := p.Symbol(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Decoded returns the pre-decoded text segment. Decoding once up front keeps
// both the emulator and the timing simulator fast.
func (p *Program) Decoded() []isa.Inst {
	out := make([]isa.Inst, len(p.Text))
	for i, w := range p.Text {
		out[i] = isa.Decode(w)
	}
	return out
}
