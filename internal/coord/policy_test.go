package coord

import (
	"fmt"
	"testing"
	"time"
)

func TestRetryPolicyJitterBounds(t *testing.T) {
	p := newRetryPolicy(10*time.Millisecond, 80*time.Millisecond, 5, 1)
	for attempt := 0; attempt < 40; attempt++ {
		want := 80 * time.Millisecond
		if attempt < 3 { // 10ms<<3 = 80ms hits the cap
			want = 10 * time.Millisecond << uint(attempt)
		}
		for i := 0; i < 50; i++ {
			d := p.delay(attempt)
			if d < want/2 || d >= want {
				t.Fatalf("delay(%d) = %v, want in [%v, %v)", attempt, d, want/2, want)
			}
		}
	}
}

func TestRetryPolicyMonotoneCap(t *testing.T) {
	// The deterministic envelope min(base<<n, max) is monotone and
	// saturates at max; jitter cannot push any delay past the cap.
	p := newRetryPolicy(time.Millisecond, 16*time.Millisecond, 3, 42)
	prevEnvelope := time.Duration(0)
	for attempt := 0; attempt < 64; attempt++ {
		envelope := p.max
		if attempt < 30 {
			if exp := p.base << uint(attempt); exp > 0 && exp < p.max {
				envelope = exp
			}
		}
		if envelope < prevEnvelope {
			t.Fatalf("envelope shrank at attempt %d: %v < %v", attempt, envelope, prevEnvelope)
		}
		prevEnvelope = envelope
		if d := p.delay(attempt); d > p.max {
			t.Fatalf("delay(%d) = %v exceeds cap %v", attempt, d, p.max)
		}
	}
	if prevEnvelope != p.max {
		t.Fatalf("envelope never saturated: %v != %v", prevEnvelope, p.max)
	}
}

func TestRetryPolicySeededDeterminism(t *testing.T) {
	seq := func(seed int64) string {
		p := newRetryPolicy(5*time.Millisecond, 50*time.Millisecond, 3, seed)
		out := ""
		for i := 0; i < 100; i++ {
			out += p.delay(i%6).String() + ","
		}
		return out
	}
	if seq(7) != seq(7) {
		t.Error("same seed produced different delay sequences")
	}
	if seq(7) == seq(8) {
		t.Error("different seeds produced identical delay sequences")
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := newRetryPolicy(0, 0, 0, 0)
	if p.base != 100*time.Millisecond || p.max != 100*time.Millisecond || p.attempts != 3 {
		t.Errorf("defaults = base %v max %v attempts %d", p.base, p.max, p.attempts)
	}
}

func backendsNamed(urls ...string) []*backend {
	out := make([]*backend, len(urls))
	for i, u := range urls {
		out[i] = &backend{url: u}
	}
	return out
}

func TestRankDeterministicAcrossOrderings(t *testing.T) {
	a := backendsNamed("http://a", "http://b", "http://c")
	b := []*backend{a[2], a[0], a[1]} // same fleet, shuffled slice
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("vortex|1|20000|key-%d", i)
		ra, rb := rank(key, a), rank(key, b)
		for j := range ra {
			if ra[j].url != rb[j].url {
				t.Fatalf("key %q ranked differently across orderings: %s vs %s at %d",
					key, ra[j].url, rb[j].url, j)
			}
		}
	}
}

func TestRankMinimalDisruption(t *testing.T) {
	// Rendezvous property: removing one backend must not reorder the
	// survivors — keys placed elsewhere keep their placement.
	full := backendsNamed("http://a", "http://b", "http://c", "http://d")
	reduced := full[:3] // "http://d" gone
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("cell-%d", i)
		want := make([]*backend, 0, 3)
		for _, b := range rank(key, full) {
			if b.url != "http://d" {
				want = append(want, b)
			}
		}
		got := rank(key, reduced)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("key %q: survivor order changed after removal", key)
			}
		}
	}
}

func TestRankSpreadsKeys(t *testing.T) {
	bs := backendsNamed("http://a", "http://b", "http://c")
	hits := map[string]int{}
	for i := 0; i < 300; i++ {
		hits[rank(fmt.Sprintf("key-%d", i), bs)[0].url]++
	}
	for _, b := range bs {
		if hits[b.url] == 0 {
			t.Errorf("backend %s never ranked first over 300 keys: %v", b.url, hits)
		}
	}
}
