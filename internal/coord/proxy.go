package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/vpir-sim/vpir/internal/obs"
	"github.com/vpir-sim/vpir/internal/server"
)

// maxProxyBody bounds a proxied request body, matching the server's own
// request bound.
const maxProxyBody = 1 << 20

// handleTrace proxies POST /v1/trace to the fleet. Traces are routed by
// the same rendezvous key the worker caches under, so repeated traces of
// one configuration land on the worker that already holds the result (the
// X-Cache header passes through untouched — a fleet HIT looks exactly like
// a single-server HIT). Backend failure walks the cell's rendezvous order
// and degrades to the local executor, like every other dispatch path.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !c.begin() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "coordinator is draining")
		return
	}
	defer c.inflight.Done()
	c.metrics.Inc("coord.trace.requests")

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var req server.TraceRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	scale := req.Scale
	if scale < 1 {
		scale = 1
	}
	key, err := server.TraceKey(req, scale, req.MaxInsts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	var exclude *backend
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		b := c.pick(key, exclude)
		if b == nil {
			break
		}
		done, err := c.proxyTrace(w, r, b, body)
		if done {
			if b == c.local {
				c.metrics.Inc("coord.trace.local")
			} else {
				c.metrics.Inc("coord.trace.proxied")
				b.onSuccess()
			}
			return
		}
		lastErr = err
		c.backendFailure(b)
		if b == c.local {
			break // the floor failed; nothing further to degrade onto
		}
		exclude = b
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("coord: no backend available")
	}
	c.metrics.Inc("coord.trace.errors")
	writeError(w, http.StatusBadGateway, lastErr.Error())
}

// proxyTrace issues one trace attempt against one backend and, when the
// backend produced a definitive answer, relays it verbatim. A definitive
// answer is any response that isn't a transport error or a 5xx/429 —
// backend 4xx (a bad config, an unknown bench) is the client's answer, not
// a reason to burn through the fleet. Returns done=false when the caller
// should try the next backend.
func (c *Coordinator) proxyTrace(w http.ResponseWriter, r *http.Request, b *backend, body []byte) (done bool, err error) {
	ctx := r.Context()
	if c.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.CellTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/trace", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Thread the correlation id through so the worker's access log and the
	// coordinator's agree on the request's identity.
	if id := r.Header.Get(server.RequestIDHeader); id != "" {
		req.Header.Set(server.RequestIDHeader, id)
	}
	resp, err := c.do(b, req)
	if err != nil {
		return false, fmt.Errorf("coord: %s trace: %w", b.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		return false, fmt.Errorf("coord: %s trace: status %d", b.url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "" {
		w.Header().Set("X-Cache", xc)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true, nil
}

// handleBenchmarks serves the workload list directly: it is static
// process-wide data identical on every fleet member, so proxying would
// only add a failure mode.
func (c *Coordinator) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	server.WriteBenchmarks(w)
}

// breakerRows renders every backend's breaker as an enum-style labeled
// gauge: one sample per (backend, state) with the current state at 1, so a
// Prometheus query can both alert on open breakers and graph transitions
// without string parsing.
func (c *Coordinator) breakerRows() []obs.LabeledSample {
	states := []string{"closed", "open", "half-open"}
	rows := make([]obs.LabeledSample, 0, len(c.remotes)*len(states))
	for _, b := range c.remotes {
		cur := b.current().String()
		for _, s := range states {
			v := 0.0
			if s == cur {
				v = 1
			}
			rows = append(rows, obs.LabeledSample{
				Labels: []obs.Label{{Key: "backend", Value: b.url}, {Key: "state", Value: s}},
				Value:  v,
			})
		}
	}
	return rows
}
