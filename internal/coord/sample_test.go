package coord

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/vpir-sim/vpir/internal/server"
)

// sampledGrid is a small sweep with a request-level sampling plan: every
// cell runs under checkpointed sampling, full coverage.
func sampledGrid() server.SweepRequest {
	return server.SweepRequest{
		Benches:  []string{"vortex"},
		Options:  []server.SimOptions{{}, {Technique: "ir"}},
		MaxInsts: testInsts,
		Sample:   &server.SampleBlock{Interval: 5_000},
	}
}

// sampleIntervals learns how many intervals a plan has over a benchmark by
// running one whole-plan sampled cell on a fresh serial server.
func sampleIntervals(t *testing.T, bench string, interval, maxInsts uint64) int {
	t.Helper()
	req := server.SweepRequest{
		Cells:    []server.SweepCellSpec{{Bench: bench, Sample: &server.SampleBlock{Interval: interval}}},
		MaxInsts: maxInsts,
	}
	code, body := postSweep(t, server.New(server.Config{Heartbeat: -1}).Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("whole-plan probe: status %d: %s", code, body)
	}
	lines := bytes.Split(bytes.TrimSpace(stripHeartbeats(body)), []byte("\n"))
	var first server.SweepLine
	if err := json.Unmarshal(lines[0], &first); err != nil || first.Sample == nil {
		t.Fatalf("whole-plan probe line: %v %s", err, lines[0])
	}
	return first.Sample.Intervals
}

// intervalCellSweep names every interval of the plan as one explicit sweep
// cell — the partition form the coordinator fans across the fleet.
func intervalCellSweep(t *testing.T, bench string, interval, maxInsts uint64) server.SweepRequest {
	t.Helper()
	k := sampleIntervals(t, bench, interval, maxInsts)
	if k < 2 {
		t.Fatalf("plan has %d intervals, need >= 2 for a meaningful fan-out", k)
	}
	cells := make([]server.SweepCellSpec, k)
	for i := range cells {
		idx := i
		cells[i] = server.SweepCellSpec{
			Bench:  bench,
			Sample: &server.SampleBlock{Interval: interval, IntervalIndex: &idx},
		}
	}
	return server.SweepRequest{Cells: cells, MaxInsts: maxInsts}
}

// TestDistributedSampledSweep: a request-level sampling plan must survive
// distribution — the coordinator's merged stream is byte-identical to one
// serial server sampling every cell itself.
func TestDistributedSampledSweep(t *testing.T) {
	req := sampledGrid()
	want := serialReference(t, req)

	w1, w2 := newWorker(t), newWorker(t)
	c := newCoord(t, Config{
		Backends:  []string{w1.URL, w2.URL},
		Heartbeat: -1,
	})
	code, got := postSweep(t, c.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 || done.Cells != 2 {
		t.Fatalf("done = %+v", done)
	}
}

// TestDistributedIntervalCells: one sampled run's intervals, fanned across
// the fleet as explicit sweep cells, must come back in deterministic cell
// order byte-identical to a serial worker — the distributed form of
// checkpoint-parallel sampling.
func TestDistributedIntervalCells(t *testing.T) {
	req := intervalCellSweep(t, "vortex", 5_000, testInsts)
	want := serialReference(t, req)

	w1, w2 := newWorker(t), newWorker(t)
	c := newCoord(t, Config{
		Backends:  []string{w1.URL, w2.URL},
		Heartbeat: -1,
	})
	code, got := postSweep(t, c.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 || done.Cells != len(req.Cells) {
		t.Fatalf("done = %+v", done)
	}
	// Every line must carry its interval measurement, in cell order.
	lines := bytes.Split(bytes.TrimSpace(stripHeartbeats(got)), []byte("\n"))
	for i, raw := range lines[:len(req.Cells)] {
		var l server.SweepLine
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if l.Interval == nil || l.Interval.Index != i || l.Raw == nil {
			t.Errorf("line %d is not an interval measurement: %s", i, raw)
		}
	}
}

// TestSampledHedge: batch streams carrying sampled cells go comatose, so
// every cell must be rescued by the sampled hedge path — a single-cell
// /v1/sweep, the only endpoint that can name an interval — and the merged
// stream must still be byte-identical to the serial reference.
func TestSampledHedge(t *testing.T) {
	req := intervalCellSweep(t, "vortex", 5_000, testInsts)
	want := serialReference(t, req)

	// Comatose only on multi-cell sweeps: hedged single-cell recoveries
	// pass through at full speed, isolating the runSampledCell path.
	slowWorker := func() *httptest.Server {
		h := server.New(server.Config{}).Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" {
				body, _ := io.ReadAll(r.Body)
				r.Body = io.NopCloser(bytes.NewReader(body))
				if bytes.Count(body, []byte(`"bench"`)) > 1 {
					time.Sleep(400 * time.Millisecond)
				}
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2 := slowWorker(), slowWorker()

	c := newCoord(t, Config{
		Backends:      []string{w1.URL, w2.URL},
		Heartbeat:     time.Millisecond,
		HedgeAfter:    30 * time.Millisecond,
		StallAfter:    5 * time.Second, // isolate the hedge path: no stall kills
		BaseBackoff:   time.Millisecond,
		ProbeInterval: time.Hour,
	})
	code, got := postSweep(t, c.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 {
		t.Fatalf("hedged sampled sweep failed cells: %+v", done)
	}
	if n := c.metrics.Counter("coord.hedges"); n == 0 {
		t.Error("no sampled cells were hedged despite comatose streams")
	}
}
