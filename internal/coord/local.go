package coord

import (
	"io"
	"net/http"
)

// doLocal executes one HTTP request against an in-process handler,
// returning a real *http.Response whose body streams as the handler
// writes. This puts the local degraded-mode executor behind the exact
// same request/response surface as a remote worker: the dispatch, retry
// and validation code cannot tell the difference, so degraded mode
// exercises the same code paths the healthy fleet does.
func doLocal(h http.Handler, req *http.Request) (*http.Response, error) {
	pr, pw := io.Pipe()
	rw := &pipeResponseWriter{header: make(http.Header), pw: pw, status: make(chan int, 1)}
	go func() {
		h.ServeHTTP(rw, req)
		rw.announce(http.StatusOK) // handler wrote nothing: implicit 200
		pw.Close()
	}()
	select {
	case st := <-rw.status:
		return &http.Response{
			Status:     http.StatusText(st),
			StatusCode: st,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     rw.header,
			Body:       pr,
			Request:    req,
		}, nil
	case <-req.Context().Done():
		pr.CloseWithError(req.Context().Err())
		return nil, req.Context().Err()
	}
}

// pipeResponseWriter adapts an io.Pipe into an http.ResponseWriter.
// Writes stream through unbuffered, so NDJSON lines and heartbeats reach
// the in-process reader as promptly as they would a socket; Flush is
// therefore a no-op.
type pipeResponseWriter struct {
	header      http.Header
	pw          *io.PipeWriter
	status      chan int
	wroteHeader bool
}

func (w *pipeResponseWriter) Header() http.Header { return w.header }

func (w *pipeResponseWriter) WriteHeader(code int) { w.announce(code) }

func (w *pipeResponseWriter) Write(p []byte) (int, error) {
	w.announce(http.StatusOK)
	return w.pw.Write(p)
}

func (w *pipeResponseWriter) Flush() {}

// announce delivers the status line exactly once; the response becomes
// visible to the caller at the first WriteHeader/Write, like a socket.
func (w *pipeResponseWriter) announce(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status <- code
}
