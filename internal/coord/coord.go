// Package coord is the fault-tolerant distributed sweep fabric: a
// coordinator that partitions sweep cells across a fleet of backend
// vpir-server workers and merges their NDJSON streams back into one
// deterministic, byte-identical-to-serial result stream.
//
// Failure is the first-class design input. Each backend sits behind a
// consecutive-failure circuit breaker with half-open /healthz probes; each
// cell carries a bounded retry budget with capped exponential backoff and
// seeded jitter; a backend whose stream goes quiet past the heartbeat
// interval gets its oldest outstanding cell hedged to a second backend
// (results are byte-identical by the determinism contract, so the first
// one to arrive wins and the duplicate is discarded without touching the
// stats); and when every backend is down the coordinator degrades to an
// in-process executor — a coordinator with zero workers still completes
// every sweep. Underneath, a content-addressed on-disk store
// (internal/resultstore) makes results durable: a restarted coordinator
// re-serves history instead of recomputing it. See docs/distributed.md.
package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/obs"
	"github.com/vpir-sim/vpir/internal/resultstore"
	"github.com/vpir-sim/vpir/internal/server"
)

// Defaults for the Config zero value.
const (
	DefaultMaxSweepCells = 1024
	DefaultCellTimeout   = 2 * time.Minute
	DefaultHedgeAfter    = 2 * time.Second
	DefaultMaxAttempts   = 3
	DefaultBaseBackoff   = 100 * time.Millisecond
	DefaultMaxBackoff    = 2 * time.Second
	DefaultFailThreshold = 3
	DefaultProbeInterval = time.Second
)

// Config tunes the coordinator. The zero value (no backends, no local
// executor) is rejected by New: a coordinator needs at least one way to
// run a cell.
type Config struct {
	// Backends are the worker base URLs ("http://host:port"). Order is
	// irrelevant: cells are routed by rendezvous hashing of their
	// identity, so every coordinator agrees on placement.
	Backends []string
	// Local, when non-nil, is the in-process executor used when no
	// healthy backend remains (and for a fleet of zero). It is a full
	// simulation server, so local results are byte-identical to worker
	// results.
	Local *server.Server
	// Store, when non-nil, is the durable content-addressed result store:
	// cells are served from it before any dispatch, and every computed
	// cell is written through.
	Store *resultstore.Store
	// Client is the HTTP client for backend traffic (nil = a default
	// client with no global timeout; per-attempt deadlines bound runs).
	Client *http.Client
	// MaxSweepCells bounds one sweep request (0 = 1024).
	MaxSweepCells int
	// CellTimeout bounds one remote /v1/run attempt (0 = 2 m).
	CellTimeout time.Duration
	// HedgeAfter is how long a backend stream may go quiet — no result
	// lines, no heartbeats — before its oldest outstanding cell is
	// hedged to another backend (0 = 2 s).
	HedgeAfter time.Duration
	// StallAfter is how long a quiet stream is tolerated before it is
	// declared dead and its remaining cells re-dispatched (0 = 3×HedgeAfter).
	StallAfter time.Duration
	// MaxAttempts bounds remote attempts per cell before the local
	// fallback (0 = 3).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the capped exponential retry backoff
	// (0 = 100 ms / 2 s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// FailThreshold is the consecutive-failure count that trips a
	// backend's circuit breaker open (0 = 3).
	FailThreshold int
	// ProbeInterval is the /healthz probe cadence for open breakers
	// (0 = 1 s).
	ProbeInterval time.Duration
	// Heartbeat is the coordinator's own output heartbeat interval
	// (0 = the server default; negative disables).
	Heartbeat time.Duration
	// Seed feeds the retry jitter source; fixed seeds make tests
	// reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = DefaultMaxSweepCells
	}
	if c.CellTimeout == 0 {
		c.CellTimeout = DefaultCellTimeout
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = DefaultHedgeAfter
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 3 * c.HedgeAfter
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = server.DefaultHeartbeat
	}
	return c
}

// Coordinator is the sweep fabric's front end: Handler serves the same
// /v1/sweep API as a single server, but fanned out over the fleet.
type Coordinator struct {
	cfg     Config
	remotes []*backend
	local   *backend
	client  *http.Client
	policy  *retryPolicy
	metrics *obs.Shared

	stateMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	stopProbe chan struct{}
	stopOnce  sync.Once
}

// New builds a coordinator over the configured fleet and starts its
// health prober. Close it when done.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 && cfg.Local == nil {
		return nil, fmt.Errorf("coord: no backends and no local executor")
	}
	c := &Coordinator{
		cfg:       cfg,
		client:    cfg.Client,
		policy:    newRetryPolicy(cfg.BaseBackoff, cfg.MaxBackoff, cfg.MaxAttempts, cfg.Seed),
		metrics:   obs.NewShared(),
		stopProbe: make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	seen := make(map[string]bool)
	for _, u := range cfg.Backends {
		u = strings.TrimRight(u, "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		c.remotes = append(c.remotes, &backend{url: u})
	}
	if cfg.Local != nil {
		// The URL never reaches a socket — doLocal serves it in-process —
		// but it must parse so request construction is uniform.
		c.local = &backend{url: "http://local"}
	}
	go c.probe(c.stopProbe)
	return c, nil
}

// Close stops the health prober. It does not drain in-flight sweeps; call
// Drain first for a graceful shutdown.
func (c *Coordinator) Close() { c.stopOnce.Do(func() { close(c.stopProbe) }) }

// Metrics exposes the coordinator's instrument registry.
func (c *Coordinator) Metrics() *obs.Shared { return c.metrics }

// cellTask is one sweep cell in flight: its global index, wire spec, the
// full identity it is routed and stored by, and the display name a valid
// result must carry.
type cellTask struct {
	index      int
	spec       server.SweepCellSpec
	key        string // bench|scale|max_insts|Config.Key — routing + store identity
	wantConfig string // cfg.Name(): transport-corruption guard
	hedged     bool   // guarded by sweepRun.mu
}

// storeKey namespaces coordinator entries so a store directory can be
// shared with a server's /v1/run entries (different body format).
func (t *cellTask) storeKey() string { return "cell|" + t.key }

// sweepRun is the merge state of one distributed sweep: lines fill in as
// cells resolve (in any order, from any path — stream, hedge, retry,
// store, local), ready[i] closes exactly once per cell, and the HTTP
// layer emits lines in deterministic cell order.
type sweepRun struct {
	ctx      context.Context
	scale    int
	maxInsts uint64
	tasks    []*cellTask
	ready    []chan struct{}

	mu       sync.Mutex
	done     []bool
	lines    []server.SweepLine
	failed   int
	resolved int
}

// resolve records cell i's line if it is the first to arrive; a losing
// duplicate (the hedge that came second) is discarded without touching
// any totals, so hedging can never double-count.
func (r *sweepRun) resolve(i int, line server.SweepLine) bool {
	line.Index = i
	r.mu.Lock()
	if r.done[i] {
		r.mu.Unlock()
		return false
	}
	r.done[i] = true
	r.lines[i] = line
	r.resolved++
	if line.Error != "" {
		r.failed++
	}
	r.mu.Unlock()
	close(r.ready[i])
	return true
}

func (r *sweepRun) isResolved(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done[i]
}

func (r *sweepRun) allResolved(tasks []*cellTask) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range tasks {
		if !r.done[t.index] {
			return false
		}
	}
	return true
}

// markHedged claims the hedge slot for a task; at most one hedge per cell.
func (r *sweepRun) markHedged(t *cellTask) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done[t.index] || t.hedged {
		return false
	}
	t.hedged = true
	return true
}

// line returns cell i's resolved line; only valid after ready[i] closed.
func (r *sweepRun) line(i int) server.SweepLine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lines[i]
}

func (r *sweepRun) totals() (cells, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tasks), r.failed
}

// newRun builds the merge state and immediately resolves every cell the
// durable store already has — a warm store turns a repeat sweep into pure
// disk reads.
func (c *Coordinator) newRun(ctx context.Context, specs []server.SweepCellSpec, cfgs []core.Config, scale int, maxInsts uint64) *sweepRun {
	run := &sweepRun{
		ctx:      ctx,
		scale:    scale,
		maxInsts: maxInsts,
		tasks:    make([]*cellTask, len(specs)),
		ready:    make([]chan struct{}, len(specs)),
		done:     make([]bool, len(specs)),
		lines:    make([]server.SweepLine, len(specs)),
	}
	for i := range specs {
		run.ready[i] = make(chan struct{})
		run.tasks[i] = &cellTask{
			index: i,
			spec:  specs[i],
			// Sampled cells extend the key with the plan (and interval
			// index), exactly like the server's cache keys: non-sampled keys
			// — and the store entries addressed through them — stay
			// byte-identical to before sampling existed.
			key:        fmt.Sprintf("%s|%d|%d|%s%s", specs[i].Bench, scale, maxInsts, cfgs[i].Key(), specs[i].Sample.KeySuffix()),
			wantConfig: cfgs[i].Name(),
		}
	}
	c.metrics.Add("coord.cells.total", uint64(len(specs)))
	for _, t := range run.tasks {
		if line, ok := c.storeGet(t); ok {
			run.resolve(t.index, line)
		}
	}
	return run
}

// dispatch routes every unresolved cell: rendezvous-ranked healthy
// backends get partitions streamed as one sweep each; with no healthy
// backend a cell goes straight to the local executor.
func (c *Coordinator) dispatch(run *sweepRun) {
	groups := make(map[*backend][]*cellTask)
	for _, t := range run.tasks {
		if run.isResolved(t.index) {
			continue
		}
		b := c.pick(t.key, nil)
		if b == nil {
			// No executor at all: New guarantees this cannot happen, but
			// resolve rather than hang if it ever does.
			run.resolve(t.index, server.SweepLine{
				Bench: t.spec.Bench, Config: t.wantConfig,
				Error: "coord: no backend available",
			})
			continue
		}
		groups[b] = append(groups[b], t)
	}
	for b, tasks := range groups {
		go c.streamSweep(run, b, tasks)
	}
}

// pick returns the first healthy backend in the cell's rendezvous order,
// skipping exclude (the hedge's primary); the local executor is the
// fallback of last resort.
func (c *Coordinator) pick(key string, exclude *backend) *backend {
	for _, b := range rank(key, c.remotes) {
		if b != exclude && b.allow() {
			return b
		}
	}
	if c.local != nil && c.local != exclude {
		return c.local
	}
	return nil
}

// do issues one HTTP request, in-process when the target is the local
// executor.
func (c *Coordinator) do(b *backend, req *http.Request) (*http.Response, error) {
	if b == c.local {
		return doLocal(c.cfg.Local.Handler(), req)
	}
	return c.client.Do(req)
}

// backendFailure records a failed interaction; tripping a breaker is
// observable in the metrics. The local executor has no breaker — it is
// the floor the fabric degrades onto.
func (c *Coordinator) backendFailure(b *backend) {
	if b == c.local {
		c.metrics.Inc("coord.local.errors")
		return
	}
	c.metrics.Inc("coord.backend.failures")
	if b.onFailure(c.cfg.FailThreshold) {
		c.metrics.Inc("coord.breaker.opens")
	}
}

// streamSweep is the primary dispatch path: one /v1/sweep covering the
// backend's whole partition, consumed line by line. Heartbeat comments
// prove liveness; a quiet stream first hedges its oldest outstanding cell
// and is eventually declared dead, re-dispatching the remainder.
func (c *Coordinator) streamSweep(run *sweepRun, b *backend, tasks []*cellTask) {
	sctx, cancel := context.WithCancel(run.ctx)
	defer cancel()
	c.metrics.Inc("coord.streams")

	var lastActivity atomic.Int64
	lastActivity.Store(time.Now().UnixNano())

	wdDone := make(chan struct{})
	go c.streamWatchdog(run, b, tasks, cancel, &lastActivity, wdDone)
	err := c.readStream(sctx, run, b, tasks, &lastActivity)
	close(wdDone)

	switch {
	case err == nil:
		b.onSuccess()
	case run.allResolved(tasks) || run.ctx.Err() != nil:
		// We canceled the stream ourselves — every cell resolved through
		// another path, or the sweep is over. Not the backend's fault; do
		// not feed its breaker.
	default:
		c.metrics.Inc("coord.stream.failures")
		c.backendFailure(b)
	}
	// Whatever the stream left unresolved — it died, stalled, or ended
	// early — goes through the per-cell retry path. Unlike a hedge, the
	// requeue does not exclude the stream's backend: the fault may have
	// been transient, and backoff plus the breaker decide when to stop
	// believing that. resolve() dedupes against hedges already in flight.
	for _, t := range tasks {
		if !run.isResolved(t.index) {
			go c.finishCell(run, t, nil)
		}
	}
}

// streamWatchdog turns heartbeat gaps into straggler signals: past
// HedgeAfter of silence the oldest outstanding cell is hedged to another
// backend; past StallAfter the stream is declared dead.
func (c *Coordinator) streamWatchdog(run *sweepRun, b *backend, tasks []*cellTask, kill context.CancelFunc, lastActivity *atomic.Int64, done <-chan struct{}) {
	interval := c.cfg.HedgeAfter / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-run.ctx.Done():
			return
		case <-ticker.C:
		}
		if run.allResolved(tasks) {
			kill() // nothing left to read; unblock the reader
			return
		}
		quiet := time.Since(time.Unix(0, lastActivity.Load()))
		if quiet >= c.cfg.StallAfter {
			c.metrics.Inc("coord.streams.stalled")
			kill()
			return
		}
		if quiet >= c.cfg.HedgeAfter {
			for _, t := range tasks {
				if !run.isResolved(t.index) && run.markHedged(t) {
					c.metrics.Inc("coord.hedges")
					go c.finishCell(run, t, b)
					break
				}
			}
		}
	}
}

// readStream consumes one backend's NDJSON sweep stream, resolving global
// cells as their lines arrive. Any transport damage — non-200, truncated
// line, JSON that doesn't parse, a line whose identity doesn't match the
// cell it claims — fails the whole stream rather than absorbing a wrong
// result.
func (c *Coordinator) readStream(ctx context.Context, run *sweepRun, b *backend, tasks []*cellTask, lastActivity *atomic.Int64) error {
	specs := make([]server.SweepCellSpec, len(tasks))
	for i, t := range tasks {
		specs[i] = t.spec
	}
	body, err := json.Marshal(server.SweepRequest{Cells: specs, Scale: run.scale, MaxInsts: run.maxInsts})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(b, req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coord: %s sweep: status %d", b.url, resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawDone := false
	for sc.Scan() {
		lastActivity.Store(time.Now().UnixNano())
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '#' {
			continue // heartbeat: liveness only
		}
		var line server.SweepLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return fmt.Errorf("coord: %s sweep: corrupt line: %w", b.url, err)
		}
		if line.Done {
			sawDone = true
			break
		}
		if line.Index < 0 || line.Index >= len(tasks) {
			return fmt.Errorf("coord: %s sweep: cell index %d out of partition", b.url, line.Index)
		}
		t := tasks[line.Index]
		if err := validateLine(t, line); err != nil {
			return fmt.Errorf("coord: %s sweep: %w", b.url, err)
		}
		// Persist before resolving: once ready[i] closes the line may be
		// emitted, and an emitted result must already be durable.
		if line.Error == "" {
			c.storePut(t, line)
		}
		if !run.resolve(t.index, line) {
			c.metrics.Inc("coord.duplicates.discarded")
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("coord: %s sweep: %w", b.url, err)
	}
	if !sawDone {
		return fmt.Errorf("coord: %s sweep: stream ended without done line", b.url)
	}
	return nil
}

// validateLine rejects results the transport may have damaged in ways
// that still parse: the line must describe exactly the cell it resolves,
// and carry either plausible stats or an explicit error.
func validateLine(t *cellTask, line server.SweepLine) error {
	if line.Bench != t.spec.Bench || line.Config != t.wantConfig {
		return fmt.Errorf("cell %d identity mismatch: got %s/%s, want %s/%s",
			t.index, line.Bench, line.Config, t.spec.Bench, t.wantConfig)
	}
	if line.Error == "" && (line.Stats == nil || line.Stats.Cycles == 0) {
		return fmt.Errorf("cell %d carries neither stats nor error", t.index)
	}
	return nil
}

// finishCell is the per-cell recovery path — hedges and re-dispatch after
// a dead stream: bounded remote attempts with capped, jittered backoff
// across healthy backends, then the local executor, then (only with no
// local executor) an error line. Every path resolves the cell; a sweep
// can stall but never wedge.
func (c *Coordinator) finishCell(run *sweepRun, t *cellTask, exclude *backend) {
	var lastErr error
	for attempt := 0; attempt < c.policy.attempts; attempt++ {
		if run.isResolved(t.index) || run.ctx.Err() != nil {
			return
		}
		if attempt > 0 {
			c.metrics.Inc("coord.retries")
			select {
			case <-time.After(c.policy.delay(attempt - 1)):
			case <-run.ctx.Done():
				// The sweep is over (client gone); resolve with the
				// context error so no reader blocks forever.
				break
			}
		}
		b := c.pick(t.key, exclude)
		if b == nil {
			break
		}
		if b == c.local {
			break // fall through to the explicit local path
		}
		line, err := c.runRemote(run, t, b)
		if err != nil {
			lastErr = err
			c.backendFailure(b)
			continue
		}
		b.onSuccess()
		c.storePut(t, line)
		if !run.resolve(t.index, line) {
			c.metrics.Inc("coord.duplicates.discarded")
		}
		return
	}
	if c.local != nil {
		line, err := c.runRemote(run, t, c.local)
		if err == nil {
			c.metrics.Inc("coord.cells.local")
			c.storePut(t, line)
			if !run.resolve(t.index, line) {
				c.metrics.Inc("coord.duplicates.discarded")
			}
			return
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("coord: no backend available")
	}
	c.metrics.Inc("coord.cells.failed")
	run.resolve(t.index, server.SweepLine{Bench: t.spec.Bench, Config: t.wantConfig, Error: lastErr.Error()})
}

// runRemote executes one cell as a single /v1/run against one backend
// (remote or local) under the per-attempt deadline, returning a sweep
// line byte-identical to what the cell's worker stream would have
// produced.
func (c *Coordinator) runRemote(run *sweepRun, t *cellTask, b *backend) (server.SweepLine, error) {
	if t.spec.Sample != nil {
		// /v1/run cannot express an interval cell, and its response lacks
		// the raw counters a stitcher needs; sampled cells are hedged as
		// single-cell sweeps so the recovered line is exactly what the dead
		// worker's stream would have carried.
		return c.runSampledCell(run, t, b)
	}
	ctx := run.ctx
	if c.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.CellTimeout)
		defer cancel()
	}
	body, err := json.Marshal(server.RunRequest{
		Bench: t.spec.Bench, Scale: run.scale, MaxInsts: run.maxInsts, Options: t.spec.Options,
	})
	if err != nil {
		return server.SweepLine{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return server.SweepLine{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(b, req)
	if err != nil {
		return server.SweepLine{}, fmt.Errorf("coord: %s run: %w", b.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.SweepLine{}, fmt.Errorf("coord: %s run: status %d", b.url, resp.StatusCode)
	}
	var rr server.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return server.SweepLine{}, fmt.Errorf("coord: %s run: corrupt body: %w", b.url, err)
	}
	line := server.SweepLine{Bench: rr.Bench, Config: rr.Stats.Config, Stats: &rr.Stats}
	if err := validateLine(t, line); err != nil {
		return server.SweepLine{}, fmt.Errorf("coord: %s run: %w", b.url, err)
	}
	return line, nil
}

// runSampledCell recovers one sampled cell as a single-cell /v1/sweep: the
// only endpoint that can name an interval of a sampling plan, and the only
// one whose line carries the raw counters, interval measurement and retry
// audit the stitcher consumes.
func (c *Coordinator) runSampledCell(run *sweepRun, t *cellTask, b *backend) (server.SweepLine, error) {
	ctx := run.ctx
	if c.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.CellTimeout)
		defer cancel()
	}
	body, err := json.Marshal(server.SweepRequest{
		Cells: []server.SweepCellSpec{t.spec}, Scale: run.scale, MaxInsts: run.maxInsts,
	})
	if err != nil {
		return server.SweepLine{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return server.SweepLine{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(b, req)
	if err != nil {
		return server.SweepLine{}, fmt.Errorf("coord: %s sampled cell: %w", b.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.SweepLine{}, fmt.Errorf("coord: %s sampled cell: status %d", b.url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 || raw[0] == '#' {
			continue // heartbeat: liveness only
		}
		var line server.SweepLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return server.SweepLine{}, fmt.Errorf("coord: %s sampled cell: corrupt line: %w", b.url, err)
		}
		if line.Done {
			break
		}
		if line.Error != "" {
			return server.SweepLine{}, fmt.Errorf("coord: %s sampled cell: %s", b.url, line.Error)
		}
		if err := validateLine(t, line); err != nil {
			return server.SweepLine{}, fmt.Errorf("coord: %s sampled cell: %w", b.url, err)
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return server.SweepLine{}, fmt.Errorf("coord: %s sampled cell: %w", b.url, err)
	}
	return server.SweepLine{}, fmt.Errorf("coord: %s sampled cell: stream ended without a result", b.url)
}

// storeGet serves a cell from the durable store if an intact entry
// matches its identity.
func (c *Coordinator) storeGet(t *cellTask) (server.SweepLine, bool) {
	if c.cfg.Store == nil {
		return server.SweepLine{}, false
	}
	body, ok, err := c.cfg.Store.Get(t.storeKey())
	if err != nil || !ok {
		if err != nil {
			c.metrics.Inc("coord.store.errors")
		} else {
			c.metrics.Inc("coord.store.misses")
		}
		return server.SweepLine{}, false
	}
	var line server.SweepLine
	if err := json.Unmarshal(body, &line); err != nil || validateLine(t, line) != nil {
		// Checksum-intact but semantically stale (e.g. written by an
		// older wire format): ignore and recompute.
		c.metrics.Inc("coord.store.misses")
		return server.SweepLine{}, false
	}
	c.metrics.Inc("coord.store.hits")
	return line, true
}

// storePut writes a successful cell through to the durable store.
func (c *Coordinator) storePut(t *cellTask, line server.SweepLine) {
	if c.cfg.Store == nil {
		return
	}
	line.Index = 0 // identity lives in the key; indices are per-sweep
	body, err := json.Marshal(line)
	if err != nil {
		return
	}
	if err := c.cfg.Store.Put(t.storeKey(), body); err != nil {
		c.metrics.Inc("coord.store.errors")
		return
	}
	c.metrics.Inc("coord.store.puts")
}
