package coord

import (
	"testing"

	"github.com/vpir-sim/vpir/internal/server"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := &backend{url: "http://x"}
	if !b.allow() {
		t.Fatal("fresh breaker should be closed")
	}
	for i := 0; i < 2; i++ {
		if opened := b.onFailure(3); opened {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	if !b.allow() {
		t.Fatal("breaker open before threshold")
	}
	if opened := b.onFailure(3); !opened {
		t.Fatal("third consecutive failure did not trip the breaker")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request")
	}
	if b.current() != stateOpen {
		t.Fatalf("state = %v, want open", b.current())
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := &backend{url: "http://x"}
	b.onFailure(3)
	b.onFailure(3)
	b.onSuccess() // consecutive count resets
	b.onFailure(3)
	b.onFailure(3)
	if b.current() != stateClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	b := &backend{url: "http://x"}
	for i := 0; i < 3; i++ {
		b.onFailure(3)
	}
	b.probeOpen()
	if b.current() != stateHalfOpen {
		t.Fatalf("state after probe = %v, want half-open", b.current())
	}
	if !b.allow() {
		t.Fatal("half-open breaker refused the trial request")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent request")
	}
	b.onSuccess()
	if b.current() != stateClosed || !b.allow() {
		t.Fatal("successful trial did not close the breaker")
	}
}

func TestBreakerTrialFailureReopens(t *testing.T) {
	b := &backend{url: "http://x"}
	for i := 0; i < 3; i++ {
		b.onFailure(3)
	}
	b.probeOpen()
	if !b.allow() {
		t.Fatal("no trial admitted")
	}
	if opened := b.onFailure(3); !opened {
		t.Fatal("failed trial did not immediately re-open the breaker")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request")
	}
}

// TestResolveDeduplicatesHedges pins the merge-state contract hedging
// rests on: the first result for a cell wins, the losing duplicate is
// discarded, and neither totals nor the stored line move twice.
func TestResolveDeduplicatesHedges(t *testing.T) {
	run := &sweepRun{
		tasks: []*cellTask{{index: 0}, {index: 1}},
		ready: []chan struct{}{make(chan struct{}), make(chan struct{})},
		done:  make([]bool, 2),
		lines: make([]server.SweepLine, 2),
	}
	first := server.SweepLine{Bench: "vortex", Config: "winner"}
	if !run.resolve(0, first) {
		t.Fatal("first resolve rejected")
	}
	if run.resolve(0, server.SweepLine{Bench: "vortex", Config: "loser", Error: "late"}) {
		t.Fatal("duplicate resolve accepted")
	}
	select {
	case <-run.ready[0]:
	default:
		t.Fatal("ready channel not closed")
	}
	if got := run.line(0); got.Config != "winner" || got.Error != "" {
		t.Fatalf("duplicate overwrote the winner: %+v", got)
	}
	if cells, failed := run.totals(); cells != 2 || failed != 0 {
		t.Fatalf("totals = %d cells %d failed; duplicate double-counted", cells, failed)
	}
	if run.resolved != 1 {
		t.Fatalf("resolved = %d, want 1", run.resolved)
	}

	// At most one hedge per cell, and none once resolved.
	tk := run.tasks[1]
	if !run.markHedged(tk) {
		t.Fatal("first hedge claim refused")
	}
	if run.markHedged(tk) {
		t.Fatal("second hedge claim on the same cell accepted")
	}
	run.resolve(1, server.SweepLine{Bench: "vortex", Config: "x", Error: "boom"})
	if run.markHedged(run.tasks[0]) {
		t.Fatal("hedge claimed on an already-resolved cell")
	}
	if cells, failed := run.totals(); cells != 2 || failed != 1 {
		t.Fatalf("totals after error line = %d/%d", cells, failed)
	}
}
