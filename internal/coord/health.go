package coord

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	stateClosed   breakerState = iota // healthy: requests flow
	stateOpen                         // tripped: requests blocked, awaiting probe
	stateHalfOpen                     // probe passed: one trial request allowed
)

func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// backend is one worker the coordinator can dispatch to: its base URL plus
// the health state the dispatcher consults before routing.
type backend struct {
	url string

	mu    sync.Mutex
	state breakerState
	fails int  // consecutive failures while closed
	trial bool // half-open: a trial request is already in flight
}

// allow reports whether a request may be sent. In half-open state exactly
// one trial request is admitted; its outcome decides closed vs re-open.
func (b *backend) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateHalfOpen:
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
	return false
}

// onSuccess records a request that completed cleanly: failures reset and
// a half-open trial closes the breaker.
func (b *backend) onSuccess() {
	b.mu.Lock()
	b.state = stateClosed
	b.fails = 0
	b.trial = false
	b.mu.Unlock()
}

// onFailure records a failed request; threshold consecutive failures trip
// the breaker open, and a failed half-open trial re-opens it immediately.
func (b *backend) onFailure(threshold int) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateHalfOpen:
		b.state = stateOpen
		b.trial = false
		return true
	case stateClosed:
		b.fails++
		if b.fails >= threshold {
			b.state = stateOpen
			return true
		}
	}
	return false
}

// current returns the state for reporting.
func (b *backend) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// probeOpen moves an open breaker to half-open; called by the prober when
// the backend's /healthz answers 200 again.
func (b *backend) probeOpen() {
	b.mu.Lock()
	if b.state == stateOpen {
		b.state = stateHalfOpen
		b.trial = false
	}
	b.mu.Unlock()
}

// probe runs the health-probe loop until stop closes: every interval, each
// open backend gets a GET /healthz with a short deadline; a 200 moves it
// to half-open so the next dispatch can trial it.
func (c *Coordinator) probe(stop <-chan struct{}) {
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		for _, b := range c.remotes {
			if b.current() != stateOpen {
				continue
			}
			if c.healthz(b) {
				b.probeOpen()
				c.metrics.Inc("coord.probe.passed")
			} else {
				c.metrics.Inc("coord.probe.failed")
			}
		}
	}
}

// healthz asks one backend whether it is serving; 200 means yes, anything
// else (including a draining 503) means no.
func (c *Coordinator) healthz(b *backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
