package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/vpir-sim/vpir/internal/faultinject"
	"github.com/vpir-sim/vpir/internal/resultstore"
	"github.com/vpir-sim/vpir/internal/server"
)

const testInsts = 20_000

// testGrid is the sweep used throughout: benches × configs crossing the
// paper's technique space, small enough to run under -race.
func testGrid(benches ...string) server.SweepRequest {
	if len(benches) == 0 {
		benches = []string{"vortex", "compress"}
	}
	return server.SweepRequest{
		Benches: benches,
		Options: []server.SimOptions{
			{},
			{Technique: "ir"},
			{Technique: "vp", Scheme: "stride"},
		},
		MaxInsts: testInsts,
	}
}

func gridCells(t *testing.T, req server.SweepRequest) int {
	t.Helper()
	specs, _, err := server.ResolveCells(req)
	if err != nil {
		t.Fatal(err)
	}
	return len(specs)
}

// newWorker spins up one simulation server as an HTTP worker.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoord builds a coordinator and registers its teardown.
func newCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// postSweep streams one sweep through a handler and returns status + body.
func postSweep(t *testing.T, h http.Handler, req server.SweepRequest) (int, []byte) {
	t.Helper()
	ts := httptest.NewServer(h)
	defer ts.Close()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// serialReference runs the sweep on one fresh serial server — the ground
// truth every distributed execution must be byte-identical to.
func serialReference(t *testing.T, req server.SweepRequest) []byte {
	t.Helper()
	code, body := postSweep(t, server.New(server.Config{Heartbeat: -1}).Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("serial reference sweep: status %d: %s", code, body)
	}
	return body
}

// stripHeartbeats removes '#' comment lines; everything else must match
// the serial stream byte for byte.
func stripHeartbeats(b []byte) []byte {
	var out []byte
	for _, line := range bytes.SplitAfter(b, []byte("\n")) {
		if len(line) > 0 && line[0] == '#' {
			continue
		}
		out = append(out, line...)
	}
	return out
}

func assertIdentical(t *testing.T, got, want []byte) {
	t.Helper()
	got, want = stripHeartbeats(got), stripHeartbeats(want)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed output diverges from serial reference.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func doneLine(t *testing.T, body []byte) server.SweepLine {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(stripHeartbeats(body)), []byte("\n"))
	var done server.SweepLine
	if err := json.Unmarshal(lines[len(lines)-1], &done); err != nil || !done.Done {
		t.Fatalf("no done line: %v %s", err, lines[len(lines)-1])
	}
	return done
}

func TestDistributedMatchesSerial(t *testing.T) {
	req := testGrid()
	want := serialReference(t, req)

	w1, w2, w3 := newWorker(t), newWorker(t), newWorker(t)
	c := newCoord(t, Config{
		Backends:  []string{w1.URL, w2.URL, w3.URL},
		Heartbeat: -1,
	})
	code, got := postSweep(t, c.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 || done.Cells != gridCells(t, req) {
		t.Fatalf("done = %+v", done)
	}
	if c.metrics.Counter("coord.streams") == 0 {
		t.Error("no sweep streams dispatched")
	}
}

func TestZeroBackendsDegradesToLocal(t *testing.T) {
	req := testGrid()
	want := serialReference(t, req)

	c := newCoord(t, Config{
		Local:     server.New(server.Config{}),
		Heartbeat: -1,
	})
	code, got := postSweep(t, c.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 {
		t.Fatalf("local-only sweep failed cells: %+v", done)
	}
}

func TestNoExecutorRejected(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("coordinator with no backends and no local executor was accepted")
	}
}

func TestAllBackendsDownDegradesToLocal(t *testing.T) {
	req := testGrid("vortex")
	want := serialReference(t, req)

	// A freshly closed listener: the port refuses connections.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	c := newCoord(t, Config{
		Backends:      []string{dead.URL},
		Local:         server.New(server.Config{}),
		Heartbeat:     -1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		FailThreshold: 2,
		ProbeInterval: time.Hour, // keep the prober out of this test
	})
	code, got := postSweep(t, c.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 {
		t.Fatalf("degraded sweep failed cells: %+v", done)
	}
	if n := c.metrics.Counter("coord.cells.local"); n == 0 {
		t.Error("no cells fell back to the local executor")
	}
	if n := c.metrics.Counter("coord.breaker.opens"); n == 0 {
		t.Error("dead backend never tripped its breaker")
	}
	if st := c.remotes[0].current(); st != stateOpen {
		t.Errorf("dead backend breaker = %v, want open", st)
	}

	// The breaker state is operator-visible through /healthz.
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if !strings.Contains(rec.Body.String(), `"open"`) {
		t.Errorf("healthz does not report the open breaker: %s", rec.Body.String())
	}
}

// TestChaosKillRevive is the headline fault drill: workers sit behind
// fault-injecting proxies randomly dropping, delaying, 503ing and
// truncating traffic while one worker is killed outright mid-sweep and
// revived at a different address — and the merged output must still be
// byte-identical to an undisturbed serial run.
func TestChaosKillRevive(t *testing.T) {
	req := testGrid("vortex", "compress", "go")
	req.Options = append(req.Options, server.SimOptions{Technique: "hybrid"})
	want := serialReference(t, req)

	// Worker 1: behind a proxy injecting availability faults (never
	// content-altering ones — those are exercised in TestChaosCorruptLine).
	w1 := newWorker(t)
	p1, err := faultinject.NewProxy(w1.URL, 11, 0.25,
		faultinject.FaultDrop, faultinject.Fault5xx, faultinject.FaultTruncate, faultinject.FaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	p1.Delay = 10 * time.Millisecond
	p1.PassHealthz(true)
	ts1 := httptest.NewServer(p1)
	defer ts1.Close()

	// Worker 2: healthy at first, killed mid-sweep, revived elsewhere.
	w2 := httptest.NewServer(server.New(server.Config{}).Handler())
	p2, err := faultinject.NewProxy(w2.URL, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2.PassHealthz(true)
	ts2 := httptest.NewServer(p2)
	defer ts2.Close()

	c := newCoord(t, Config{
		Backends:      []string{ts1.URL, ts2.URL},
		Local:         server.New(server.Config{}), // the floor under total fleet loss
		Heartbeat:     -1,
		HedgeAfter:    40 * time.Millisecond,
		StallAfter:    120 * time.Millisecond,
		BaseBackoff:   2 * time.Millisecond,
		MaxBackoff:    10 * time.Millisecond,
		FailThreshold: 2,
		ProbeInterval: 15 * time.Millisecond,
		Seed:          1,
	})

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(20 * time.Millisecond)
		w2.Close() // hard kill: connections refused at the old target
		time.Sleep(100 * time.Millisecond)
		revived := newWorker(t)
		if err := p2.SetTarget(revived.URL); err != nil {
			t.Error(err)
		}
	}()

	code, got := postSweep(t, c.Handler(), req)
	<-killed
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 || done.Cells != gridCells(t, req) {
		t.Fatalf("chaos sweep done = %+v", done)
	}
}

// TestChaosCorruptLine: a proxy that flips bytes inside response bodies.
// The coordinator must detect the damage (parse failure or identity
// mismatch), fail the stream, and recompute — never absorb a wrong line.
func TestChaosCorruptLine(t *testing.T) {
	req := testGrid("vortex")
	want := serialReference(t, req)

	w := newWorker(t)
	p, err := faultinject.NewProxy(w.URL, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.PassHealthz(true)
	p.Script(faultinject.FaultCorrupt) // first request (the sweep) corrupted
	ts := httptest.NewServer(p)
	defer ts.Close()

	c := newCoord(t, Config{
		Backends:      []string{ts.URL},
		Local:         server.New(server.Config{}),
		Heartbeat:     -1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		FailThreshold: 10, // keep the breaker closed; retries hit the worker again
		ProbeInterval: time.Hour,
	})
	code, got := postSweep(t, c.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 {
		t.Fatalf("corrupt-stream sweep failed cells: %+v", done)
	}
	if n := c.metrics.Counter("coord.stream.failures"); n == 0 {
		t.Error("corrupted stream was not detected as a failure")
	}
}

// TestHedgedStragglers: every backend is fast on /v1/run but comatose on
// /v1/sweep, so the primary streams go quiet past HedgeAfter and each
// cell must be rescued by a hedged per-cell run on the other backend —
// while the coordinator's own heartbeats keep its client stream alive.
func TestHedgedStragglers(t *testing.T) {
	req := testGrid()
	want := serialReference(t, req)

	slowWorker := func() *httptest.Server {
		h := server.New(server.Config{}).Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" {
				time.Sleep(400 * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2 := slowWorker(), slowWorker()

	c := newCoord(t, Config{
		Backends:      []string{w1.URL, w2.URL},
		Heartbeat:     time.Millisecond,
		HedgeAfter:    30 * time.Millisecond,
		StallAfter:    5 * time.Second, // isolate the hedge path: no stall kills
		BaseBackoff:   time.Millisecond,
		ProbeInterval: time.Hour,
	})
	code, got := postSweep(t, c.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Contains(got, []byte(server.HeartbeatLine)) {
		t.Error("coordinator emitted no heartbeats while cells straggled")
	}
	assertIdentical(t, got, want)
	if done := doneLine(t, got); done.Failed != 0 {
		t.Fatalf("hedged sweep failed cells: %+v", done)
	}
	if n := c.metrics.Counter("coord.hedges"); n == 0 {
		t.Error("no cells were hedged despite comatose streams")
	}
}

// TestDurableStoreAcrossRestart: a restarted coordinator must serve a
// repeat sweep from its content-addressed store — even with the whole
// fleet gone — and a corrupted entry must be quarantined and recomputed,
// never served and never fatal.
func TestDurableStoreAcrossRestart(t *testing.T) {
	req := testGrid()
	cells := gridCells(t, req)
	want := serialReference(t, req)
	dir := t.TempDir()

	// First life: compute everything through a real worker, write through.
	store1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorker(t)
	c1 := newCoord(t, Config{Backends: []string{w.URL}, Store: store1, Heartbeat: -1})
	code, got := postSweep(t, c1.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if n := c1.metrics.Counter("coord.store.puts"); n != uint64(cells) {
		t.Fatalf("store puts = %d, want %d", n, cells)
	}

	// Second life: fleet dead, store intact. ≥90%% served from the store;
	// here it must be 100%% — no executor exists to compute anything.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	store2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newCoord(t, Config{Backends: []string{dead.URL}, Store: store2, Heartbeat: -1, ProbeInterval: time.Hour})
	code, got = postSweep(t, c2.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if hits := c2.metrics.Counter("coord.store.hits"); hits != uint64(cells) {
		t.Fatalf("restarted coordinator store hits = %d, want %d", hits, cells)
	}

	// Third life: one entry corrupted on disk. It must be quarantined and
	// recomputed (locally — the fleet is still dead), not served or fatal.
	corruptOneEntry(t, dir)
	store3, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c3 := newCoord(t, Config{
		Backends:      []string{dead.URL},
		Local:         server.New(server.Config{}),
		Store:         store3,
		Heartbeat:     -1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		FailThreshold: 2,
		ProbeInterval: time.Hour,
	})
	code, got = postSweep(t, c3.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	assertIdentical(t, got, want)
	if q := store3.Quarantined(); q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
	if hits := c3.metrics.Counter("coord.store.hits"); hits != uint64(cells-1) {
		t.Errorf("store hits after corruption = %d, want %d", hits, cells-1)
	}
	if n := c3.metrics.Counter("coord.cells.local"); n != 1 {
		t.Errorf("locally recomputed cells = %d, want 1", n)
	}
	// The recomputed entry was written back: a fourth read is whole again.
	if got := store3.Stats(); got.Puts != 1 {
		t.Errorf("recomputed cell not written back: puts = %d", got.Puts)
	}
}

// corruptOneEntry flips a byte deep inside one stored entry's body.
func corruptOneEntry(t *testing.T, dir string) {
	t.Helper()
	var victim string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || victim != "" {
			return err
		}
		if strings.Contains(path, "quarantine") {
			return nil
		}
		victim = path
		return nil
	})
	if err != nil || victim == "" {
		t.Fatalf("no store entry to corrupt (err=%v)", err)
	}
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0xff
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorDrain(t *testing.T) {
	c := newCoord(t, Config{Local: server.New(server.Config{})})
	if err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body := postSweep(t, c.Handler(), testGrid("vortex"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("sweep while draining: status %d: %s", code, body)
	}
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sweep", strings.NewReader("{}")))
	if ra := rec.Header().Get("Retry-After"); ra != "5" {
		t.Errorf("draining sweep Retry-After = %q, want 5", ra)
	}
	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("healthz while draining: %d %s", rec.Code, rec.Body.String())
	}
	// Idempotent.
	if err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestClientCancelAbortsSweep: a client that disappears mid-stream must
// abort the distributed sweep promptly (observable as coord.sweeps.aborted)
// rather than leaving the fabric computing for nobody.
func TestClientCancelAbortsSweep(t *testing.T) {
	// One sweep worker and heavier cells: the sweep must still be running
	// when the client walks away after the first line.
	c := newCoord(t, Config{Local: server.New(server.Config{SweepParallelism: 1}), Heartbeat: -1})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	req := testGrid()
	req.MaxInsts = 400_000
	body, _ := json.Marshal(req)
	ctx, cancel := context.WithCancel(context.Background())
	reqH, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(reqH)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line to prove the stream is live, then walk away.
	buf := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for c.metrics.Counter("coord.sweeps.aborted") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never noticed the departed client")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSweepCellLimit(t *testing.T) {
	c := newCoord(t, Config{Local: server.New(server.Config{}), MaxSweepCells: 2})
	code, body := postSweep(t, c.Handler(), testGrid("vortex")) // 3 cells > 2
	if code != http.StatusBadRequest {
		t.Fatalf("oversized sweep: status %d: %s", code, body)
	}
}

func TestStoreKeyNamespaced(t *testing.T) {
	// Coordinator entries must never collide with a server's /v1/run
	// entries in a shared store directory: the formats differ.
	tk := &cellTask{key: fmt.Sprintf("vortex|1|%d|somekey", testInsts)}
	if !strings.HasPrefix(tk.storeKey(), "cell|") {
		t.Fatalf("storeKey %q lacks the cell| namespace", tk.storeKey())
	}
}
