package coord

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// retryPolicy is the coordinator's backoff schedule: capped exponential
// growth with multiplicative jitter drawn from a seeded source, so unit
// tests are reproducible while a real fleet's retries still decorrelate.
type retryPolicy struct {
	base     time.Duration // first delay (attempt 0)
	max      time.Duration // hard cap on any delay
	attempts int           // bounded attempt count per cell

	mu  sync.Mutex
	rng *rand.Rand
}

func newRetryPolicy(base, max time.Duration, attempts int, seed int64) *retryPolicy {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = base
	}
	if attempts <= 0 {
		attempts = 3
	}
	return &retryPolicy{base: base, max: max, attempts: attempts, rng: rand.New(rand.NewSource(seed))}
}

// delay returns the backoff before retry number attempt (0-based): min(base
// ·2^attempt, max), scaled by a jitter factor in [0.5, 1). The jittered
// value therefore never exceeds max and never collapses below max/2 once
// the exponential ramp has saturated.
func (p *retryPolicy) delay(attempt int) time.Duration {
	d := p.max
	// Guard the shift: past 30 doublings any sane base has saturated.
	if attempt < 30 {
		if exp := p.base << uint(attempt); exp > 0 && exp < p.max {
			d = exp
		}
	}
	p.mu.Lock()
	j := 0.5 + 0.5*p.rng.Float64()
	p.mu.Unlock()
	return time.Duration(float64(d) * j)
}

// rank orders backends for one cell key by rendezvous (highest-random-
// weight) hashing: every coordinator ranks the same key the same way, so
// repeated configurations route to the same backend for cache affinity,
// and when that backend is unhealthy the next-ranked one takes over
// without reshuffling any other key's placement.
func rank(key string, backends []*backend) []*backend {
	type scored struct {
		b *backend
		w uint64
	}
	s := make([]scored, len(backends))
	for i, b := range backends {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(b.url))
		s[i] = scored{b, h.Sum64()}
	}
	// Insertion sort by descending weight (ties by URL for determinism);
	// fleet sizes are single digits.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].w > s[j-1].w || (s[j].w == s[j-1].w && s[j].b.url < s[j-1].b.url)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]*backend, len(s))
	for i := range s {
		out[i] = s[i].b
	}
	return out
}
