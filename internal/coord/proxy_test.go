package coord

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/vpir-sim/vpir/internal/server"
)

func postTrace(t *testing.T, h http.Handler, req server.TraceRequest, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(h)
	defer ts.Close()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/trace", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestTraceProxied(t *testing.T) {
	w := newWorker(t)
	c := newCoord(t, Config{Backends: []string{w.URL}, Seed: 1})

	req := server.TraceRequest{Bench: "compress", MaxInsts: 15_000, Options: server.SimOptions{Technique: "ir"}, Window: 32}
	resp, body := postTrace(t, c.Handler(), req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first trace X-Cache = %q, want MISS (passed through)", got)
	}
	var tr server.TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	if len(tr.Window.Insts) == 0 || tr.Stats.Cycles == 0 {
		t.Errorf("empty trace payload: %d insts, %d cycles", len(tr.Window.Insts), tr.Stats.Cycles)
	}

	// The repeat hits the worker's cache, and the fleet relays that fact.
	resp2, body2 := postTrace(t, c.Handler(), req, nil)
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("repeat trace X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("repeat trace not byte-identical through the proxy")
	}
}

func TestTraceDegradesToLocal(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the start
	local := server.New(server.Config{Workers: 2})
	t.Cleanup(func() { local.Drain(t.Context()) })
	c := newCoord(t, Config{Backends: []string{dead.URL}, Local: local, Seed: 1})

	req := server.TraceRequest{Bench: "vortex", MaxInsts: 10_000, Options: server.SimOptions{Technique: "base"}}
	resp, body := postTrace(t, c.Handler(), req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var tr server.TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil || tr.Stats.Cycles == 0 {
		t.Fatalf("local fallback produced a bad trace: %v %s", err, body)
	}
	if got := c.metrics.Counter("coord.trace.local"); got == 0 {
		t.Error("coord.trace.local not counted")
	}
}

func TestTraceBadRequestNotRetried(t *testing.T) {
	w := newWorker(t)
	c := newCoord(t, Config{Backends: []string{w.URL}, Seed: 1})

	req := server.TraceRequest{Bench: "vortex", Options: server.SimOptions{Technique: "warp-drive"}}
	resp, body := postTrace(t, c.Handler(), req, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	if got := c.metrics.Counter("coord.backend.failures"); got != 0 {
		t.Errorf("a client error fed the breaker: %v failures", got)
	}
}

func TestTraceRequestIDThreaded(t *testing.T) {
	var seen string
	w := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get(server.RequestIDHeader)
		rw.Header().Set("Content-Type", "application/json")
		rw.Write([]byte(`{"bench":"vortex","scale":1,"stats":{"cycles":1},"window":{"max":1,"insts":[]},"events":{"dropped":0,"events":[]},"series":{"interval":1,"fields":[],"rows":[]}}`))
	}))
	t.Cleanup(w.Close)
	c := newCoord(t, Config{Backends: []string{w.URL}, Seed: 1})

	req := server.TraceRequest{Bench: "vortex", Options: server.SimOptions{Technique: "base"}}
	resp, _ := postTrace(t, c.Handler(), req, map[string]string{server.RequestIDHeader: "trace-abc-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if seen != "trace-abc-1" {
		t.Errorf("backend saw request id %q, want trace-abc-1", seen)
	}
}

func TestCoordUIServed(t *testing.T) {
	w := newWorker(t)
	c := newCoord(t, Config{Backends: []string{w.URL}, Seed: 1})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/ui/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(strings.ToLower(string(body)), "<!doctype html") {
		t.Errorf("GET /v1/ui/ = %d, dashboard not served", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	var benches []server.BenchmarkEntry
	err = json.NewDecoder(resp.Body).Decode(&benches)
	resp.Body.Close()
	if err != nil || len(benches) == 0 {
		t.Errorf("GET /v1/benchmarks: %v, %d entries", err, len(benches))
	}
}

func TestMetricsBreakerStates(t *testing.T) {
	w := newWorker(t)
	c := newCoord(t, Config{Backends: []string{w.URL}, Seed: 1})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "# TYPE vpir_coord_backend_state gauge") {
		t.Errorf("metrics missing breaker-state gauge family:\n%s", text)
	}
	want := `vpir_coord_backend_state{backend="` + w.URL + `",state="closed"} 1`
	if !strings.Contains(text, want) {
		t.Errorf("metrics missing %q:\n%s", want, text)
	}
	for _, s := range []string{"open", "half-open"} {
		line := `vpir_coord_backend_state{backend="` + w.URL + `",state="` + s + `"} 0`
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing zero sample %q", line)
		}
	}
}
