package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/vpir-sim/vpir/internal/obs"
	"github.com/vpir-sim/vpir/internal/server"
)

// Handler returns the coordinator's API mux — the same surface a single
// server exposes, so clients (and the embedded dashboard) cannot tell a
// fleet from one worker:
//
//	POST /v1/sweep      distributed sweep, streamed as NDJSON
//	POST /v1/trace      proxied to the cell's rendezvous worker
//	GET  /v1/benchmarks the built-in workloads (served directly)
//	GET  /v1/ui/        the embedded analysis dashboard
//	GET  /healthz       coordinator status plus per-backend breaker states
//	GET  /metrics       Prometheus text format, incl. breaker-state gauges
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/trace", c.handleTrace)
	mux.HandleFunc("GET /v1/benchmarks", c.handleBenchmarks)
	mux.Handle("GET /v1/ui/", server.UIHandler())
	mux.HandleFunc("GET /v1/ui", redirectUI)
	mux.HandleFunc("GET /{$}", redirectUI)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func redirectUI(w http.ResponseWriter, r *http.Request) {
	http.Redirect(w, r, "/v1/ui/", http.StatusMovedPermanently)
}

// Drain rejects new sweeps with 503 and waits for in-flight ones to
// finish (or ctx to expire). Idempotent; Close separately stops the
// prober.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.stateMu.Lock()
	c.draining = true
	c.stateMu.Unlock()
	done := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("coord: drain: %w", ctx.Err())
	}
}

func (c *Coordinator) begin() bool {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	if c.draining {
		return false
	}
	c.inflight.Add(1)
	return true
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: msg})
}

// handleSweep is the fabric's front door: resolve the request to cells,
// serve what the store already has, dispatch the rest across the fleet,
// and emit lines in deterministic cell order — byte-identical to what one
// serial server would have produced, heartbeats aside.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !c.begin() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "coordinator is draining")
		return
	}
	defer c.inflight.Done()
	c.metrics.Inc("coord.sweeps")

	var req server.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	specs, cfgs, err := server.ResolveCells(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(specs) > c.cfg.MaxSweepCells {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep of %d cells exceeds the %d-cell limit", len(specs), c.cfg.MaxSweepCells))
		return
	}
	scale := req.Scale
	if scale < 1 {
		scale = 1
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	run := c.newRun(ctx, specs, cfgs, scale, req.MaxInsts)
	c.dispatch(run)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)

	var tick <-chan time.Time
	if c.cfg.Heartbeat > 0 {
		t := time.NewTicker(c.cfg.Heartbeat)
		defer t.Stop()
		tick = t.C
	}
	clientGone := r.Context().Done()

	for i := range run.tasks {
	cell:
		for {
			select {
			case <-run.ready[i]:
				if err := enc.Encode(run.line(i)); err != nil {
					c.metrics.Inc("coord.sweeps.aborted")
					return
				}
				flush()
				break cell
			case <-tick:
				if _, err := fmt.Fprint(w, server.HeartbeatLine); err != nil {
					c.metrics.Inc("coord.sweeps.aborted")
					return
				}
				c.metrics.Inc("coord.heartbeats")
				flush()
			case <-clientGone:
				// The deferred cancel tears down streams and retries.
				c.metrics.Inc("coord.sweeps.aborted")
				return
			}
		}
	}
	cells, failed := run.totals()
	enc.Encode(server.SweepLine{Done: true, Cells: cells, Failed: failed})
	flush()
}

// handleHealthz reports the coordinator's own state plus every backend's
// breaker state, so an operator can see at a glance which workers the
// fabric currently trusts.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.stateMu.Lock()
	draining := c.draining
	c.stateMu.Unlock()
	backends := make(map[string]string, len(c.remotes))
	for _, b := range c.remotes {
		backends[b.url] = b.current().String()
	}
	resp := struct {
		Status   string            `json:"status"`
		Local    bool              `json:"local"`
		Backends map[string]string `json:"backends,omitempty"`
	}{Status: "ok", Local: c.local != nil, Backends: backends}
	w.Header().Set("Content-Type", "application/json")
	if draining {
		resp.Status = "draining"
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Store != nil {
		c.metrics.Set("coord.store.entries", float64(c.cfg.Store.Len()))
		c.metrics.Set("coord.store.quarantined", float64(c.cfg.Store.Quarantined()))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.metrics.WritePrometheus(w)
	// Breaker states ride along as enum-style labeled gauges — the hedge /
	// dedup / re-dispatch / abort counters above tell you how often the
	// fabric recovered; these tell you which workers it currently trusts.
	obs.WriteLabeledGauge(w, "coord.backend.state", c.breakerRows())
}
