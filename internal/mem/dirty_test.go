package mem

import (
	"testing"
)

// dirtyList collects the dirty page numbers via the iterator.
func dirtyList(m *Memory) []uint32 {
	var pns []uint32
	m.DirtyPages(func(pn uint32, data *[PageSize]byte) bool {
		pns = append(pns, pn)
		return true
	})
	return pns
}

func TestDirtyPagesBasic(t *testing.T) {
	m := NewMemory()
	if got := m.DirtyPageCount(); got != 0 {
		t.Fatalf("fresh memory has %d dirty pages", got)
	}
	// Reads never dirty, even of unmapped pages.
	_ = m.LoadWord(0x5000)
	_ = m.LoadByte(0x5001)
	if got := m.DirtyPageCount(); got != 0 {
		t.Fatalf("reads dirtied %d pages", got)
	}
	m.StoreByte(0x5000, 1)
	m.StoreWord(0x3000, 2)
	m.StoreHalf(0x3004, 3)
	got := dirtyList(m)
	want := []uint32{3, 5}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("dirty pages = %v, want %v (ascending)", got, want)
	}
}

// TestDirtyPagesWriteReadInterleave is the hostile pattern for the
// one-entry page cache: alternating reads and writes to the same page must
// mark it dirty exactly once, and reads that refill the cache must not
// forget earlier dirtiness or invent new dirtiness.
func TestDirtyPagesWriteReadInterleave(t *testing.T) {
	m := NewMemory()
	const a, b = uint32(0x1000), uint32(0x9000) // two distinct pages
	// Map page b via a write, then interleave.
	m.StoreByte(b, 0xFF)
	for i := 0; i < 64; i++ {
		// Read a (unmapped at first), evicting b from the page cache.
		_ = m.LoadWord(a + uint32(i*4))
		// Write b through a refilled cache entry.
		m.StoreByte(b+uint32(i), byte(i))
		// Read b (cache hit), then write b again (cache hit, already dirty).
		_ = m.LoadByte(b + uint32(i))
		m.StoreByte(b+uint32(i), byte(i+1))
	}
	got := dirtyList(m)
	if len(got) != 1 || got[0] != b>>12 {
		t.Fatalf("dirty pages = %v, want [%d]", got, b>>12)
	}
	// Now dirty page a through the cached-read path: the last access above
	// left some page cached; force a to be the cached page via a read, then
	// write it.
	_ = m.LoadWord(a)
	m.StoreWord(a, 42)
	got = dirtyList(m)
	if len(got) != 2 || got[0] != a>>12 || got[1] != b>>12 {
		t.Fatalf("dirty pages = %v, want [%d %d]", got, a>>12, b>>12)
	}
}

// TestDirtyPagesBoundaryStraddle writes values straddling a page boundary
// and expects both pages dirty with the right contents.
func TestDirtyPagesBoundaryStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint32(2*PageSize - 2) // last half of page 1, first half of page 2
	m.StoreWord(addr, 0xAABBCCDD)
	got := dirtyList(m)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("dirty pages = %v, want [1 2]", got)
	}
	if v := m.LoadWord(addr); v != 0xAABBCCDD {
		t.Fatalf("straddled word = %#x", v)
	}
	// Half straddle too.
	m2 := NewMemory()
	m2.StoreHalf(uint32(PageSize-1), 0x1234)
	got = dirtyList(m2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("half-straddle dirty pages = %v, want [0 1]", got)
	}
}

func TestDirtyPagesResetClears(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x1000, 7)
	m.StoreWord(0x2000, 8)
	m.Reset()
	if got := m.DirtyPageCount(); got != 0 {
		t.Fatalf("after Reset, %d dirty pages", got)
	}
	// The cached page survived Reset zeroed; a write through it must dirty
	// it again (the lastDirty flag must not go stale across Reset).
	m.StoreWord(0x2000, 9)
	got := dirtyList(m)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("after Reset+write, dirty pages = %v, want [2]", got)
	}
	if v := m.LoadWord(0x1000); v != 0 {
		t.Fatalf("reset page reads %#x, want 0", v)
	}
}

func TestDirtyPagesIteratorEarlyStop(t *testing.T) {
	m := NewMemory()
	for pn := uint32(0); pn < 8; pn++ {
		m.StoreByte(pn*PageSize, byte(pn))
	}
	seen := 0
	m.DirtyPages(func(pn uint32, data *[PageSize]byte) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early-stop iterator visited %d pages, want 3", seen)
	}
}

func TestApplyPageRoundTrip(t *testing.T) {
	src := NewMemory()
	for i := uint32(0); i < 3*PageSize; i += 4 {
		src.StoreWord(0x4000+i, i^0x5A5A5A5A)
	}
	// Capture.
	var imgs []PageImage
	src.DirtyPages(func(pn uint32, data *[PageSize]byte) bool {
		imgs = append(imgs, PageImage{PN: pn, Data: *data})
		return true
	})
	// Restore onto a memory with unrelated prior contents.
	dst := NewMemory()
	dst.StoreWord(0xF000, 0xBAD)
	dst.Reset()
	for i := range imgs {
		dst.ApplyPage(&imgs[i])
	}
	for i := uint32(0); i < 3*PageSize; i += 4 {
		if got, want := dst.LoadWord(0x4000+i), i^0x5A5A5A5A; got != want {
			t.Fatalf("restored word at %#x = %#x, want %#x", 0x4000+i, got, want)
		}
	}
	if dst.Checksum() != src.Checksum() {
		// Checksums may differ: dst has page 0xF mapped-but-zero, src does
		// not... except Checksum hashes mapped pages including zero ones.
		// Compare dirty sets instead, which define architectural state.
		a, b := dirtyList(src), dirtyList(dst)
		if len(a) != len(b) {
			t.Fatalf("dirty sets differ: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("dirty sets differ: %v vs %v", a, b)
			}
		}
	}
	// ApplyPage through the page cache: cache dst's page then re-apply a
	// changed image; the cached view must see the new contents.
	_ = dst.LoadWord(0x4000)
	imgs[0].Data[0] = 0xEE
	dst.ApplyPage(&imgs[0])
	if got := dst.LoadByte(0x4000); got != 0xEE {
		t.Fatalf("ApplyPage behind page cache: read %#x, want 0xEE", got)
	}
}

func TestCacheSnapshotRoundTrip(t *testing.T) {
	c := NewCache(DefaultDCache())
	for i := uint32(0); i < 4096; i += 32 {
		c.Access(i * 3)
	}
	snap := c.Snapshot()
	// A restored cache must behave identically to the original.
	c2 := NewCache(DefaultDCache())
	if err := c2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4096; i += 16 {
		if a, b := c.Access(i*7), c2.Access(i*7); a != b {
			t.Fatalf("access %d: latency %d vs restored %d", i, a, b)
		}
	}
	// Stats restart from zero on restore.
	c3 := NewCache(DefaultDCache())
	if err := c3.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if s := c3.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Fatalf("restored cache stats = %+v, want zero", s)
	}
	// Geometry mismatch is rejected.
	cSmall := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 2, LineBytes: 32, HitLatency: 1, MissLatency: 6, Ports: 1})
	if err := cSmall.RestoreSnapshot(snap); err == nil {
		t.Fatal("geometry-mismatched restore must fail")
	}
}
