package mem

import (
	"testing"
	"testing/quick"

	"github.com/vpir-sim/vpir/internal/prog"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.LoadWord(0x1000) != 0 {
		t.Error("unmapped read must be zero")
	}
	m.StoreWord(0x1000, 0xDEADBEEF)
	if got := m.LoadWord(0x1000); got != 0xDEADBEEF {
		t.Errorf("word = %#x", got)
	}
	if got := m.LoadByte(0x1000); got != 0xEF {
		t.Errorf("little-endian byte 0 = %#x", got)
	}
	if got := m.LoadByte(0x1003); got != 0xDE {
		t.Errorf("little-endian byte 3 = %#x", got)
	}
	m.StoreHalf(0x2000, 0x1234)
	if got := m.LoadHalf(0x2000); got != 0x1234 {
		t.Errorf("half = %#x", got)
	}
}

func TestMemoryCrossPageWord(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2)
	m.StoreWord(addr, 0xCAFEBABE)
	if got := m.LoadWord(addr); got != 0xCAFEBABE {
		t.Errorf("cross-page word = %#x", got)
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint32) bool {
		addr &= 0x7FFF_FFFC // keep well-formed
		m.StoreWord(addr, v)
		return m.LoadWord(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadProgram(t *testing.T) {
	p := &prog.Program{
		Text: []uint32{0x11111111, 0x22222222},
		Data: []byte{1, 2, 3},
	}
	m := NewMemory()
	m.LoadProgram(p)
	if m.LoadWord(prog.TextBase+4) != 0x22222222 {
		t.Error("text not loaded")
	}
	if m.LoadByte(prog.DataBase+2) != 3 {
		t.Error("data not loaded")
	}
}

func TestChecksumDetectsChanges(t *testing.T) {
	m1, m2 := NewMemory(), NewMemory()
	m1.StoreWord(0x1000, 5)
	m2.StoreWord(0x1000, 5)
	if m1.Checksum() != m2.Checksum() {
		t.Error("identical memories must have equal checksums")
	}
	m2.StoreByte(0x50000, 1)
	if m1.Checksum() == m2.Checksum() {
		t.Error("different memories must differ")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(DefaultDCache())
	if lat := c.Access(0x1000); lat != 7 {
		t.Errorf("cold miss latency = %d, want 7 (1 hit + 6 miss)", lat)
	}
	if lat := c.Access(0x1004); lat != 1 {
		t.Errorf("same-line hit latency = %d, want 1", lat)
	}
	if lat := c.Access(0x1000 + 31); lat != 1 {
		t.Errorf("line-end hit latency = %d, want 1", lat)
	}
	if lat := c.Access(0x1000 + 32); lat != 7 {
		t.Errorf("next-line miss latency = %d, want 7", lat)
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, Ways: 2, LineBytes: 32, HitLatency: 1, MissLatency: 6})
	// 2 sets; addresses mapping to set 0: multiples of 64.
	c.Access(0)   // miss, way A
	c.Access(64)  // miss, way B
	c.Access(0)   // hit, A more recent
	c.Access(128) // miss, evicts B (LRU)
	if !c.Lookup(0) {
		t.Error("line 0 must survive")
	}
	if c.Lookup(64) {
		t.Error("line 64 must be evicted")
	}
	if !c.Lookup(128) {
		t.Error("line 128 must be resident")
	}
}

func TestCacheConflictsWithinSet(t *testing.T) {
	c := NewCache(DefaultICache())
	// 64KB 2-way 32B lines = 1024 sets; stride of 32KB maps to same set.
	c.Access(0)
	c.Access(32 << 10)
	c.Access(64 << 10) // third line in the same set evicts one
	hits := 0
	for _, a := range []uint32{0, 32 << 10, 64 << 10} {
		if c.Lookup(a) {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("resident lines in set = %d, want 2 (2-way)", hits)
	}
}

func TestCacheSameLine(t *testing.T) {
	c := NewCache(DefaultICache())
	if !c.SameLine(0x100, 0x11F) {
		t.Error("0x100 and 0x11F share a 32B line")
	}
	if c.SameLine(0x11F, 0x120) {
		t.Error("0x11F and 0x120 must not share a line")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(DefaultDCache())
	c.Access(0x1000)
	c.Reset()
	if c.Lookup(0x1000) {
		t.Error("lookup after reset must miss")
	}
	if s := c.Stats(); s.Accesses != 0 {
		t.Error("stats must be zeroed")
	}
}

func TestCacheMissRate(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Error("idle miss rate must be 0")
	}
	s = CacheStats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}
