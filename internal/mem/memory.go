// Package mem provides the simulator's memory system: a sparse byte-
// addressable main memory shared by the functional emulator and the timing
// core, and a set-associative cache timing model configured per Table 1 of
// the paper (64 KB, 2-way, 32-byte lines, 6-cycle miss latency).
package mem

import (
	"github.com/vpir-sim/vpir/internal/prog"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, paged, little-endian main memory. The zero value is
// ready to use. Reads of unmapped addresses return zero; writes allocate.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	// One-entry translation cache: accesses cluster heavily within a page,
	// and the map lookup otherwise dominates the cost of a load or store.
	lastPN   uint32
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	if p := m.lastPage; p != nil && m.lastPN == pn {
		return p
	}
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// LoadHalf returns the little-endian 16-bit value at addr.
func (m *Memory) LoadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// StoreHalf stores the little-endian 16-bit value v at addr.
func (m *Memory) StoreHalf(addr uint32, v uint16) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// LoadWord returns the little-endian 32-bit value at addr. Word accesses
// within one page take the fast path.
func (m *Memory) LoadWord(addr uint32) uint32 {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
	}
	return uint32(m.LoadHalf(addr)) | uint32(m.LoadHalf(addr+2))<<16
}

// StoreWord stores the little-endian 32-bit value v at addr.
func (m *Memory) StoreWord(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, true)
		o := addr & pageMask
		p[o], p[o+1], p[o+2], p[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return
	}
	m.StoreHalf(addr, uint16(v))
	m.StoreHalf(addr+2, uint16(v>>16))
}

// LoadProgram maps a program image: text at prog.TextBase (so that the
// emulator's data path and any self-referential loads see real bytes) and
// static data at prog.DataBase.
func (m *Memory) LoadProgram(p *prog.Program) {
	for i, w := range p.Text {
		m.StoreWord(prog.TextBase+uint32(4*i), w)
	}
	for i, b := range p.Data {
		m.StoreByte(prog.DataBase+uint32(i), b)
	}
}

// Reset zeroes every mapped page while keeping the page storage allocated.
// A reset memory is indistinguishable from a fresh one (reads of unmapped
// addresses return zero either way), so Machine.Reset can reuse the page
// set a previous run faulted in instead of reallocating it.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = [pageSize]byte{}
	}
}

// Checksum returns a FNV-1a hash over all mapped pages; used by golden tests
// to compare architectural memory state between the emulator and the timing
// core.
func (m *Memory) Checksum() uint64 {
	// Hash pages in address order for determinism.
	var pns []uint32
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	for i := 1; i < len(pns); i++ { // insertion sort; page count is small
		for j := i; j > 0 && pns[j] < pns[j-1]; j-- {
			pns[j], pns[j-1] = pns[j-1], pns[j]
		}
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, pn := range pns {
		h ^= uint64(pn)
		h *= prime64
		for _, b := range m.pages[pn] {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}
