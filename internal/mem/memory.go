// Package mem provides the simulator's memory system: a sparse byte-
// addressable main memory shared by the functional emulator and the timing
// core, and a set-associative cache timing model configured per Table 1 of
// the paper (64 KB, 2-way, 32-byte lines, 6-cycle miss latency).
package mem

import (
	"github.com/vpir-sim/vpir/internal/prog"
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// PageSize is the sparse-memory page granularity in bytes; dirty-page
// checkpoints (internal/sample) are taken and restored at this granularity.
const PageSize = pageSize

// PageImage is the contents of one page, identified by its page number
// (address >> 12). Checkpoints hold the dirty pages of a memory as a slice
// of these.
type PageImage struct {
	PN   uint32
	Data [PageSize]byte
}

// Memory is a sparse, paged, little-endian main memory. The zero value is
// ready to use. Reads of unmapped addresses return zero; writes allocate.
//
// Every page that has ever been written since the last Reset is tracked as
// dirty; DirtyPages enumerates them so a checkpoint can capture exactly the
// state a restore must reproduce (reads of never-written pages return zero
// on both sides by construction).
type Memory struct {
	pages map[uint32]*[pageSize]byte
	dirty map[uint32]struct{}
	// One-entry translation cache: accesses cluster heavily within a page,
	// and the map lookup otherwise dominates the cost of a load or store.
	// lastDirty mirrors dirty-set membership for the cached page so the
	// store fast path skips the map insert after the first write.
	lastPN    uint32
	lastPage  *[pageSize]byte
	lastDirty bool
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{
		pages: make(map[uint32]*[pageSize]byte),
		dirty: make(map[uint32]struct{}),
	}
}

func (m *Memory) page(addr uint32, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	if p := m.lastPage; p != nil && m.lastPN == pn {
		if alloc && !m.lastDirty {
			m.dirty[pn] = struct{}{}
			m.lastDirty = true
		}
		return p
	}
	p := m.pages[pn]
	if p == nil {
		if !alloc {
			return nil
		}
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	m.lastPN, m.lastPage = pn, p
	_, m.lastDirty = m.dirty[pn]
	if alloc && !m.lastDirty {
		m.dirty[pn] = struct{}{}
		m.lastDirty = true
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// LoadHalf returns the little-endian 16-bit value at addr.
func (m *Memory) LoadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// StoreHalf stores the little-endian 16-bit value v at addr.
func (m *Memory) StoreHalf(addr uint32, v uint16) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// LoadWord returns the little-endian 32-bit value at addr. Word accesses
// within one page take the fast path.
func (m *Memory) LoadWord(addr uint32) uint32 {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		o := addr & pageMask
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
	}
	return uint32(m.LoadHalf(addr)) | uint32(m.LoadHalf(addr+2))<<16
}

// StoreWord stores the little-endian 32-bit value v at addr.
func (m *Memory) StoreWord(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, true)
		o := addr & pageMask
		p[o], p[o+1], p[o+2], p[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return
	}
	m.StoreHalf(addr, uint16(v))
	m.StoreHalf(addr+2, uint16(v>>16))
}

// LoadProgram maps a program image: text at prog.TextBase (so that the
// emulator's data path and any self-referential loads see real bytes) and
// static data at prog.DataBase.
func (m *Memory) LoadProgram(p *prog.Program) {
	for i, w := range p.Text {
		m.StoreWord(prog.TextBase+uint32(4*i), w)
	}
	for i, b := range p.Data {
		m.StoreByte(prog.DataBase+uint32(i), b)
	}
}

// Reset zeroes every mapped page while keeping the page storage allocated.
// A reset memory is indistinguishable from a fresh one (reads of unmapped
// addresses return zero either way), so Machine.Reset can reuse the page
// set a previous run faulted in instead of reallocating it. The dirty set
// is cleared with it: a reset memory has, by definition, never been written.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = [pageSize]byte{}
	}
	for pn := range m.dirty {
		delete(m.dirty, pn)
	}
	m.lastDirty = false
}

// DirtyPageCount returns how many pages have been written since the last
// Reset.
func (m *Memory) DirtyPageCount() int { return len(m.dirty) }

// DirtyPages calls fn for every page written since the last Reset, in
// ascending page-number order, stopping early if fn returns false. The data
// pointer aliases live memory — callers that keep the contents must copy.
func (m *Memory) DirtyPages(fn func(pn uint32, data *[PageSize]byte) bool) {
	for _, pn := range sortedPNs(m.dirty) {
		if !fn(pn, m.pages[pn]) {
			return
		}
	}
}

// ApplyPage overwrites one whole page with img's contents, allocating the
// page if needed and marking it dirty; restoring a checkpoint is a Reset
// followed by ApplyPage for every captured page.
func (m *Memory) ApplyPage(img *PageImage) {
	pn := img.PN
	p := m.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	*p = img.Data
	m.dirty[pn] = struct{}{}
	if m.lastPage != nil && m.lastPN == pn {
		m.lastDirty = true
	}
}

// sortedPNs returns the keys of a page-number set in ascending order.
func sortedPNs[V any](pages map[uint32]V) []uint32 {
	pns := make([]uint32, 0, len(pages))
	for pn := range pages {
		pns = append(pns, pn)
	}
	for i := 1; i < len(pns); i++ { // insertion sort; page count is small
		for j := i; j > 0 && pns[j] < pns[j-1]; j-- {
			pns[j], pns[j-1] = pns[j-1], pns[j]
		}
	}
	return pns
}

// Checksum returns a FNV-1a hash over all mapped pages; used by golden tests
// to compare architectural memory state between the emulator and the timing
// core.
func (m *Memory) Checksum() uint64 {
	// Hash pages in address order for determinism.
	pns := sortedPNs(m.pages)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, pn := range pns {
		h ^= uint64(pn)
		h *= prime64
		for _, b := range m.pages[pn] {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}
