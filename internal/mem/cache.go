package mem

import (
	"fmt"
	"math/rand"
)

// CacheConfig describes a set-associative cache. The defaults used by the
// simulator come from Table 1: 64 KB, 2-way, 32-byte lines, 6-cycle miss.
type CacheConfig struct {
	SizeBytes   int
	Ways        int
	LineBytes   int
	HitLatency  int // cycles for a hit (1 in the base machine)
	MissLatency int // additional cycles for a miss (6 in the base machine)
	Ports       int // simultaneous accesses per cycle (2 for the D-cache)
}

// DefaultICache returns the Table 1 instruction cache configuration.
func DefaultICache() CacheConfig {
	return CacheConfig{SizeBytes: 64 << 10, Ways: 2, LineBytes: 32, HitLatency: 1, MissLatency: 6, Ports: 1}
}

// DefaultDCache returns the Table 1 data cache configuration (dual ported).
func DefaultDCache() CacheConfig {
	return CacheConfig{SizeBytes: 64 << 10, Ways: 2, LineBytes: 32, HitLatency: 1, MissLatency: 6, Ports: 2}
}

// CacheStats counts cache traffic.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a tag-only timing model of a set-associative cache with true LRU
// replacement. Data always lives in Memory; the cache decides latency.
// The model is non-blocking: concurrent misses simply each pay the miss
// latency, which matches the paper's simple 6-cycle miss model.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint32
	tags      [][]uint32 // [set][way], tag | valid
	lruTick   [][]uint64 // [set][way], last-use timestamp
	tick      uint64
	stats     CacheStats
}

const invalidTag = 0xFFFF_FFFF

// NewCache builds a cache from cfg. Sizes must be powers of two.
func NewCache(cfg CacheConfig) *Cache {
	lineShift := uint(0)
	for 1<<lineShift < cfg.LineBytes {
		lineShift++
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:       cfg,
		lineShift: lineShift,
		setMask:   uint32(nSets - 1),
		tags:      make([][]uint32, nSets),
		lruTick:   make([][]uint64, nSets),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint32, cfg.Ways)
		c.lruTick[i] = make([]uint64, cfg.Ways)
		for w := range c.tags[i] {
			c.tags[i][w] = invalidTag
		}
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Lookup reports whether addr hits without changing cache state.
func (c *Cache) Lookup(addr uint32) bool {
	set := (addr >> c.lineShift) & c.setMask
	tag := addr >> c.lineShift
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[set][w] == tag {
			return true
		}
	}
	return false
}

// Access performs a cached access to addr and returns the latency in cycles.
// A miss allocates the line (write-allocate) and evicts the LRU way.
func (c *Cache) Access(addr uint32) int {
	c.tick++
	c.stats.Accesses++
	set := (addr >> c.lineShift) & c.setMask
	tag := addr >> c.lineShift
	ways := c.tags[set]
	for w := range ways {
		if ways[w] == tag {
			c.lruTick[set][w] = c.tick
			return c.cfg.HitLatency
		}
	}
	c.stats.Misses++
	victim := 0
	for w := 1; w < len(ways); w++ {
		if c.lruTick[set][w] < c.lruTick[set][victim] {
			victim = w
		}
	}
	ways[victim] = tag
	c.lruTick[set][victim] = c.tick
	return c.cfg.HitLatency + c.cfg.MissLatency
}

// LineBytes returns the cache line size in bytes.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// SameLine reports whether two addresses fall in the same cache line; the
// fetch stage uses this to enforce the "cannot fetch across cache line
// boundaries" rule from Table 1.
func (c *Cache) SameLine(a, b uint32) bool {
	return a>>c.lineShift == b>>c.lineShift
}

// CorruptTag flips bits in the tag of one valid line chosen by r; ok is
// false when every line is still invalid. The cache is a tag-only timing
// model (data always lives in Memory), so tag corruption can create
// spurious misses or spurious hits but never a wrong value — by
// construction it is performance-only.
func (c *Cache) CorruptTag(r *rand.Rand) (desc string, ok bool) {
	victimSet, victimWay := -1, 0
	seen := 0
	for s := range c.tags {
		for w := range c.tags[s] {
			if c.tags[s][w] == invalidTag {
				continue
			}
			seen++
			if r.Intn(seen) == 0 {
				victimSet, victimWay = s, w
			}
		}
	}
	if victimSet < 0 {
		return "", false
	}
	mask := r.Uint32() | 1
	c.tags[victimSet][victimWay] ^= mask
	return fmt.Sprintf("cache tag[%d,%d]^=%#x", victimSet, victimWay, mask), true
}

// CacheSnapshot is the warm state of a Cache: every tag and LRU timestamp
// plus the tick counter, flattened set-major. Statistics are deliberately
// not part of a snapshot — restored caches start counting from zero, so an
// interval's stats cover only that interval.
type CacheSnapshot struct {
	Cfg  CacheConfig
	Tags []uint32
	LRU  []uint64
	Tick uint64
}

// Snapshot captures the cache's warm state.
func (c *Cache) Snapshot() *CacheSnapshot {
	nSets := len(c.tags)
	s := &CacheSnapshot{
		Cfg:  c.cfg,
		Tags: make([]uint32, 0, nSets*c.cfg.Ways),
		LRU:  make([]uint64, 0, nSets*c.cfg.Ways),
		Tick: c.tick,
	}
	for set := 0; set < nSets; set++ {
		s.Tags = append(s.Tags, c.tags[set]...)
		s.LRU = append(s.LRU, c.lruTick[set]...)
	}
	return s
}

// RestoreSnapshot rewinds the cache to a previously captured warm state.
// The snapshot's geometry must match the cache's; statistics are zeroed.
func (c *Cache) RestoreSnapshot(s *CacheSnapshot) error {
	if s.Cfg != c.cfg {
		return fmt.Errorf("mem: cache snapshot config %+v does not match cache %+v", s.Cfg, c.cfg)
	}
	if want := len(c.tags) * c.cfg.Ways; len(s.Tags) != want || len(s.LRU) != want {
		return fmt.Errorf("mem: cache snapshot has %d tags/%d lru, want %d", len(s.Tags), len(s.LRU), want)
	}
	for set := range c.tags {
		copy(c.tags[set], s.Tags[set*c.cfg.Ways:])
		copy(c.lruTick[set], s.LRU[set*c.cfg.Ways:])
	}
	c.tick = s.Tick
	c.stats = CacheStats{}
	return nil
}

// Reset invalidates all lines and zeroes the statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		for w := range c.tags[i] {
			c.tags[i][w] = invalidTag
			c.lruTick[i][w] = 0
		}
	}
	c.tick = 0
	c.stats = CacheStats{}
}
