package vpir

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSpeculationPerformanceOnly is the public-API differential property:
// for randomized valid option sets, VP, IR and hybrid runs must produce
// bit-identical architectural results (Output, ExitCode, committed
// instruction count) to the base machine — speculation may only change
// timing, never outcomes. The subtests run in parallel, so `go test -race`
// (the make check default) also exercises concurrent machines over the
// shared program cache. internal/core's TestDifferentialRandomConfigs
// covers the same property under structural (window/table/cache geometry)
// fuzzing; this test covers every knob reachable through Options.
func TestSpeculationPerformanceOnly(t *testing.T) {
	const maxInsts = 25_000
	rng := rand.New(rand.NewSource(3))
	benches := Benchmarks()

	type trial struct {
		bench string
		opt   Options
	}
	var trials []trial
	for i := 0; i < 8; i++ {
		bench := benches[rng.Intn(len(benches))]
		pickS := func(vals ...string) string { return vals[rng.Intn(len(vals))] }
		opt := Options{
			Scheme:           pickS("magic", "lvp", "stride"),
			BranchResolution: pickS("sb", "nsb"),
			Reexec:           pickS("me", "nme"),
			VerifyLatency:    rng.Intn(2),
			LateValidation:   rng.Intn(2) == 0,
			MaxInsts:         maxInsts,
		}
		switch rng.Intn(3) {
		case 0:
			opt.Technique = VP
		case 1:
			opt.Technique = IR
		default:
			opt.Technique = Hybrid
		}
		trials = append(trials, trial{bench, opt})
	}

	// One base run per distinct benchmark is the shared oracle.
	base := make(map[string]Result)
	for _, tr := range trials {
		if _, ok := base[tr.bench]; ok {
			continue
		}
		res, err := RunBenchmark(tr.bench, 1, Options{MaxInsts: maxInsts})
		if err != nil {
			t.Fatalf("base %s: %v", tr.bench, err)
		}
		base[tr.bench] = res
	}

	for i, tr := range trials {
		tr := tr
		name := fmt.Sprintf("%d_%s_%s", i, tr.bench, tr.opt.Technique)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunBenchmark(tr.bench, 1, tr.opt)
			if err != nil {
				t.Fatalf("%+v: %v", tr.opt, err)
			}
			b := base[tr.bench]
			if res.Output != b.Output {
				t.Errorf("%+v: Output diverged from base", tr.opt)
			}
			if res.ExitCode != b.ExitCode {
				t.Errorf("%+v: ExitCode %d != base %d", tr.opt, res.ExitCode, b.ExitCode)
			}
			if res.Committed != b.Committed {
				t.Errorf("%+v: Committed %d != base %d", tr.opt, res.Committed, b.Committed)
			}
		})
	}
}
