package vpir

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/vpir-sim/vpir/internal/core"
	"github.com/vpir-sim/vpir/internal/technique"
	"github.com/vpir-sim/vpir/internal/workload"
)

// randOptions draws a random valid knob set for a registered technique:
// only knobs the technique consumes are set, so every trial resolves (the
// strict knob validation rejects mismatched combinations by design).
func randOptions(rng *rand.Rand, tech string) Options {
	pickS := func(vals ...string) string { return vals[rng.Intn(len(vals))] }
	opt := Options{Technique: Technique(tech)}
	switch tech {
	case "base":
	case "ir":
		opt.LateValidation = rng.Intn(2) == 0
	default: // the VP family: vp, vp_*, hybrid, hybrid_conf
		switch tech {
		case "vp", "hybrid", "hybrid_conf":
			opt.Scheme = pickS("magic", "lvp", "stride", "2delta", "fcm")
		}
		opt.BranchResolution = pickS("sb", "nsb")
		opt.Reexec = pickS("me", "nme")
		opt.VerifyLatency = rng.Intn(2)
		if tech == "hybrid" || tech == "hybrid_conf" {
			opt.LateValidation = rng.Intn(2) == 0
		}
	}
	return opt
}

// TestSpeculationPerformanceOnly is the public-API differential property:
// for randomized valid option sets of EVERY registered technique, the run
// must produce bit-identical architectural results (Output, ExitCode,
// committed instruction count) to the base machine — speculation may only
// change timing, never outcomes. The trial list enumerates the technique
// registry, so a newly registered scheme is differentially validated with
// no test change. The subtests run in parallel, so `go test -race` (the
// make check default) also exercises concurrent machines over the shared
// program cache. internal/core's TestDifferentialRandomConfigs covers the
// same property under structural (window/table/cache geometry) fuzzing;
// this test covers every knob reachable through Options.
func TestSpeculationPerformanceOnly(t *testing.T) {
	const maxInsts = 25_000
	rng := rand.New(rand.NewSource(3))
	benches := Benchmarks()

	type trial struct {
		bench string
		opt   Options
	}
	var trials []trial
	// Two random knob draws per registered technique (base excluded — it is
	// the oracle side of every comparison), each on a random benchmark.
	for _, tech := range Techniques() {
		if tech == "base" {
			continue
		}
		for i := 0; i < 2; i++ {
			opt := randOptions(rng, tech)
			opt.MaxInsts = maxInsts
			trials = append(trials, trial{benches[rng.Intn(len(benches))], opt})
		}
	}

	// One base run per distinct benchmark is the shared oracle.
	base := make(map[string]Result)
	for _, tr := range trials {
		if _, ok := base[tr.bench]; ok {
			continue
		}
		res, err := RunBenchmark(tr.bench, 1, Options{MaxInsts: maxInsts})
		if err != nil {
			t.Fatalf("base %s: %v", tr.bench, err)
		}
		base[tr.bench] = res
	}

	for i, tr := range trials {
		tr := tr
		name := fmt.Sprintf("%d_%s_%s", i, tr.bench, tr.opt.Technique)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunBenchmark(tr.bench, 1, tr.opt)
			if err != nil {
				t.Fatalf("%+v: %v", tr.opt, err)
			}
			b := base[tr.bench]
			if res.Output != b.Output {
				t.Errorf("%+v: Output diverged from base", tr.opt)
			}
			if res.ExitCode != b.ExitCode {
				t.Errorf("%+v: ExitCode %d != base %d", tr.opt, res.ExitCode, b.ExitCode)
			}
			if res.Committed != b.Committed {
				t.Errorf("%+v: Committed %d != base %d", tr.opt, res.Committed, b.Committed)
			}
		})
	}
}

// TestResetDeterminismAllTechniques pins Machine.Reset's determinism
// contract across the registry: for every registered technique (default
// knobs), a machine that ran once and was Reset must reproduce a fresh
// machine's Stats, Output and ExitCode bit for bit on the rerun. This is
// what lets pooled workers reuse machines across requests for any
// technique a client may name.
func TestResetDeterminismAllTechniques(t *testing.T) {
	const maxInsts = 20_000
	w, err := workload.Get("compress")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Techniques() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg, err := technique.Resolve(name, technique.Knobs{})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := core.New(p, cfg, maxInsts)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Run(0); err != nil {
				t.Fatal(err)
			}

			reused, err := core.New(p, cfg, maxInsts)
			if err != nil {
				t.Fatal(err)
			}
			if err := reused.Run(0); err != nil {
				t.Fatal(err)
			}
			if err := reused.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			if err := reused.Run(0); err != nil {
				t.Fatal(err)
			}

			if fresh.Stats() != reused.Stats() {
				t.Errorf("Reset run's Stats diverged from fresh run\n got: %+v\nwant: %+v",
					reused.Stats(), fresh.Stats())
			}
			if fresh.Output() != reused.Output() || fresh.ExitCode() != reused.ExitCode() {
				t.Errorf("Reset run's Output/ExitCode diverged from fresh run")
			}
		})
	}
}
