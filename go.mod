module github.com/vpir-sim/vpir

go 1.22
