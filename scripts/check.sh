#!/bin/sh
# Pre-commit gate, equivalent to `make check` for environments without make:
# vet, build, race-enabled tests, and the deterministic fault-injection
# smoke campaign (see docs/robustness.md).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go vet + go test -race (core, harness, faultinject) =="
# Explicit gate for the concurrency-heavy packages: the sweep engine, the
# parallel fault campaign and the core machinery their workers reuse.
go vet ./internal/core/ ./internal/harness/ ./internal/faultinject/
go test -race ./internal/core/ ./internal/harness/ ./internal/faultinject/

echo "== go test -race (full suite) =="
go test -race ./...

echo "== fault-injection smoke campaign =="
go run ./cmd/vpir-faults -seed 1 -campaign smoke

echo "check: all gates passed"
