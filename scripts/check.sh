#!/bin/sh
# Pre-commit gate, equivalent to `make check` for environments without make:
# vet, build, race-enabled tests, and the deterministic fault-injection
# smoke campaign (see docs/robustness.md).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go vet + go test -race (core, harness, faultinject, server, coord) =="
# Explicit gate for the concurrency-heavy packages: the sweep engine, the
# parallel fault campaign, the core machinery their workers reuse, the HTTP
# simulation server (cache/singleflight/drain under concurrent load), and
# the distributed sweep coordinator (hedging/breakers/store).
go vet ./internal/core/ ./internal/harness/ ./internal/faultinject/ ./internal/server/ ./internal/coord/
go test -race ./internal/core/ ./internal/harness/ ./internal/faultinject/ ./internal/server/ ./internal/coord/

echo "== go test -race (full suite) =="
go test -race ./...

echo "== fault-injection smoke campaign =="
go run ./cmd/vpir-faults -seed 1 -campaign smoke

echo "== service-layer chaos drill (kill/revive, store restart, corruption) =="
# Workers behind fault-injecting proxies, one killed and revived mid-sweep;
# the merged distributed output must stay byte-identical to a serial run,
# and the durable store must survive restart and quarantine corruption.
go test -race -run 'TestChaos|TestDurableStore|TestAllBackendsDown|TestHedgedStragglers' -count 1 ./internal/coord/

echo "== golden-result corpus =="
# Every benchmark x {base, VP, IR} against testdata/golden; a core change
# that shifts paper-relevant numbers fails here. Deliberate changes:
# go test -run TestGoldenCorpus -update . (then review the JSON diff).
go test -run 'TestGoldenCorpus' .

echo "== skip-invariance smoke (golden corpus under VPIR_NO_SKIP=1) =="
# The quiescence-aware cycle skipper must be invisible: the same corpus,
# forced through the legacy cycle-by-cycle loop, must reproduce the exact
# same numbers (see docs/performance.md).
VPIR_NO_SKIP=1 go test -run 'TestGoldenCorpus' -count 1 .

echo "== fuzz smoke (assembler + end-to-end RunSource) =="
go test -run '^$' -fuzz FuzzAssemble -fuzztime 10s ./internal/asm
go test -run '^$' -fuzz FuzzRunSource -fuzztime 10s .

echo "== ui smoke (embedded dashboard + /v1/trace against a real binary) =="
# Boot a real vpir-server on an ephemeral port, fetch the embedded UI,
# drive /v1/trace twice (shape-validated, byte-identical cache HIT on the
# repeat), then SIGTERM for a clean drain.
uitmp="$(mktemp -d)"
go build -o "$uitmp/vpir-server" ./cmd/vpir-server
if ! go run ./scripts/uismoke -bin "$uitmp/vpir-server"; then
    rm -rf "$uitmp"
    exit 1
fi
rm -rf "$uitmp"

echo "== sampled-simulation smoke (bit-identity + stitched-IPC tolerance) =="
# On two kernels: a 100%-coverage sampling plan must reproduce the
# non-sampled run bit for bit, and a sparse plan's stitched IPC must land
# within tolerance of the full-detail IPC (see docs/sampling.md).
go run ./scripts/samplesmoke

# Opt-in profiling pass: VPIR_PROFILE=1 scripts/check.sh additionally
# captures CPU and allocation profiles of the three pipeline variants into
# profiles/ (same as `make profile`; see docs/performance.md).
if [ "${VPIR_PROFILE:-0}" = "1" ]; then
    echo "== profiles (VPIR_PROFILE=1) =="
    mkdir -p profiles
    go test -run '^$' -bench 'BenchmarkSimBase$' -benchtime 5x \
        -cpuprofile profiles/base.cpu.pprof -memprofile profiles/base.mem.pprof .
    go test -run '^$' -bench 'BenchmarkSimIR$' -benchtime 5x \
        -cpuprofile profiles/ir.cpu.pprof -memprofile profiles/ir.mem.pprof .
    go test -run '^$' -bench 'BenchmarkSimVP$' -benchtime 5x \
        -cpuprofile profiles/vp.cpu.pprof -memprofile profiles/vp.mem.pprof .
    echo "profiles written to profiles/"
fi

echo "check: all gates passed"
