#!/bin/sh
# Pre-commit gate, equivalent to `make check` for environments without make:
# vet, build, race-enabled tests, and the deterministic fault-injection
# smoke campaign (see docs/robustness.md).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fault-injection smoke campaign =="
go run ./cmd/vpir-faults -seed 1 -campaign smoke

echo "check: all gates passed"
