// Command samplesmoke is the sampled-simulation smoke gate run by
// `make sample-smoke` (and `make check`). On two kernels it checks the two
// properties docs/sampling.md promises:
//
//  1. A 100%-coverage plan whose single interval covers the whole program
//     is bit-identical to the non-sampled run — same cycles, same counters,
//     same architectural output.
//  2. A sparse plan's stitched IPC lands within a fixed tolerance of the
//     full-detail IPC, so the estimator is wired to the right counters
//     (a unit mix-up is a >10% error; genuine sampling bias at these plan
//     sizes is a few percent).
//
// Exit status is the verdict; output is deterministic on success.
package main

import (
	"fmt"
	"math"
	"os"

	vpir "github.com/vpir-sim/vpir"
)

const (
	maxInsts = 80_000
	// ipcTolerance bounds the relative stitched-IPC error of the sparse
	// plan. Sampling bias at this interval size is ~1-3%; 10% catches
	// estimator bugs without flaking on real bias.
	ipcTolerance = 0.10
)

func main() {
	kernels := []string{"compress", "go"}
	for _, k := range kernels {
		if err := smoke(k); err != nil {
			fmt.Fprintf(os.Stderr, "sample-smoke: %s: %v\n", k, err)
			os.Exit(1)
		}
	}
	fmt.Printf("sample-smoke: PASS (%d kernels: full-coverage bit-identity, sparse IPC within %.0f%%)\n",
		len(kernels), ipcTolerance*100)
}

func smoke(kernel string) error {
	full, err := vpir.RunBenchmark(kernel, 1, vpir.Options{MaxInsts: maxInsts})
	if err != nil {
		return fmt.Errorf("full run: %w", err)
	}

	// Gate 1: one interval covering the whole program must reproduce the
	// non-sampled run bit for bit.
	exact, err := vpir.RunBenchmark(kernel, 1, vpir.Options{
		MaxInsts: maxInsts,
		Sample:   &vpir.SampleOptions{Interval: 1 << 40},
	})
	if err != nil {
		return fmt.Errorf("100%%-coverage run: %w", err)
	}
	if exact.Sample == nil || !exact.Sample.Exact || exact.Sample.Intervals != 1 {
		return fmt.Errorf("100%%-coverage run not exact: %+v", exact.Sample)
	}
	a, b := full, exact
	a.Sample, b.Sample = nil, nil
	// CyclesSkipped is a simulator-performance observation, explicitly
	// outside the results contract (sampled runs report 0 — their stitched
	// statistics have no single underlying machine). Everything else must
	// match bit for bit.
	a.CyclesSkipped, b.CyclesSkipped = 0, 0
	if a != b {
		return fmt.Errorf("100%%-coverage run diverges from the full run:\nfull:    %+v\nsampled: %+v", a, b)
	}

	// Gate 2: a sparse plan's stitched IPC within tolerance of the truth.
	sparse, err := vpir.RunBenchmark(kernel, 1, vpir.Options{
		MaxInsts: maxInsts,
		Sample:   &vpir.SampleOptions{Interval: 5_000, Every: 4, Warmup: 1_000},
	})
	if err != nil {
		return fmt.Errorf("sparse run: %w", err)
	}
	if sparse.Sample == nil || sparse.Sample.Exact || sparse.Sample.Coverage >= 1 {
		return fmt.Errorf("sparse run did not sample: %+v", sparse.Sample)
	}
	relErr := math.Abs(sparse.IPC-full.IPC) / full.IPC
	if relErr > ipcTolerance {
		return fmt.Errorf("stitched IPC %.4f vs full %.4f: %.1f%% error exceeds %.0f%%",
			sparse.IPC, full.IPC, relErr*100, ipcTolerance*100)
	}
	fmt.Printf("sample-smoke: %s ok (full IPC %.4f, stitched %.4f at %.0f%% coverage, err %.2f%%)\n",
		kernel, full.IPC, sparse.IPC, sparse.Sample.Coverage*100, relErr*100)
	return nil
}
