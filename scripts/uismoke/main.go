// Command uismoke is the dashboard smoke gate (`make ui-smoke`): it boots
// a real vpir-server binary on an ephemeral port, fetches the embedded UI
// assets, drives POST /v1/trace for a golden configuration twice —
// validating the payload shape and that the repeat is a byte-identical
// cache hit — and then shuts the server down cleanly. It exercises the
// binary end to end (embedding, routing, middleware, drain), which unit
// tests against the handler cannot.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"github.com/vpir-sim/vpir/internal/server"
)

func main() {
	bin := flag.String("bin", "", "path to the vpir-server binary under test")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "uismoke: -bin is required")
		os.Exit(2)
	}
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "uismoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("uismoke: ok")
}

func run(bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-access-log=false")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill()

	// The server announces its bound address on stderr; -addr :0 makes the
	// smoke test port-collision-proof.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, after, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(after):
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		return fmt.Errorf("server did not announce a listen address within 10s")
	}

	if err := checkUI(base); err != nil {
		return err
	}
	if err := checkTrace(base); err != nil {
		return err
	}

	// Clean shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("server did not exit within 15s of SIGTERM")
	}
	return nil
}

// checkUI verifies the dashboard is genuinely embedded: every asset served
// from the bare binary, no external fetches.
func checkUI(base string) error {
	body, _, err := get(base + "/v1/ui/")
	if err != nil {
		return err
	}
	if !strings.Contains(strings.ToLower(string(body)), "<!doctype html") {
		return fmt.Errorf("/v1/ui/ is not the dashboard index")
	}
	for asset, marker := range map[string]string{
		"app.js":    "/v1/trace", // the dashboard drives the trace API
		"style.css": "--stage-f", // the stage palette
	} {
		body, _, err := get(base + "/v1/ui/" + asset)
		if err != nil {
			return err
		}
		if !strings.Contains(string(body), marker) {
			return fmt.Errorf("/v1/ui/%s served but missing %q", asset, marker)
		}
	}
	return nil
}

// checkTrace drives the golden trace config twice: the first response must
// have a well-formed payload, the second must be a byte-identical cache
// hit.
func checkTrace(base string) error {
	req := server.TraceRequest{
		Bench:    "vortex",
		MaxInsts: 20_000,
		Options:  server.SimOptions{Technique: "hybrid", Scheme: "stride"},
		Window:   64,
	}
	reqBody, err := json.Marshal(req)
	if err != nil {
		return err
	}
	first, firstCache, err := post(base+"/v1/trace", reqBody)
	if err != nil {
		return err
	}
	if firstCache != "MISS" {
		return fmt.Errorf("first trace X-Cache = %q, want MISS", firstCache)
	}
	if err := validateTrace(first); err != nil {
		return fmt.Errorf("trace payload: %w", err)
	}
	second, secondCache, err := post(base+"/v1/trace", reqBody)
	if err != nil {
		return err
	}
	if secondCache != "HIT" {
		return fmt.Errorf("second trace X-Cache = %q, want HIT", secondCache)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("repeated trace is not byte-identical")
	}
	return nil
}

// validateTrace checks the payload shape the dashboard depends on.
func validateTrace(body []byte) error {
	var tr server.TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		return err
	}
	if tr.Stats.Cycles == 0 || tr.Stats.Committed == 0 || tr.Stats.IPC <= 0 {
		return fmt.Errorf("implausible stats: %+v", tr.Stats)
	}
	if len(tr.Window.Insts) == 0 {
		return fmt.Errorf("window.insts is empty")
	}
	for i, ev := range tr.Window.Insts {
		if ev.Seq == 0 && i > 0 {
			return fmt.Errorf("inst %d has no seq", i)
		}
		if !strings.HasPrefix(ev.PC, "0x") || ev.Disasm == "" {
			return fmt.Errorf("inst %d: pc %q disasm %q", i, ev.PC, ev.Disasm)
		}
	}
	if tr.Events.Events == nil {
		return fmt.Errorf("events.events is null")
	}
	if len(tr.Events.Counts) == 0 {
		return fmt.Errorf("events.counts is empty for a hybrid run")
	}
	if len(tr.Series.Fields) == 0 || tr.Series.Fields[0] != "cycle" {
		return fmt.Errorf("series.fields = %v, want leading cycle", tr.Series.Fields)
	}
	if len(tr.Series.Rows) == 0 {
		return fmt.Errorf("series.rows is empty")
	}
	for i, row := range tr.Series.Rows {
		if len(row) != len(tr.Series.Fields) {
			return fmt.Errorf("series row %d width %d != %d fields", i, len(row), len(tr.Series.Fields))
		}
	}
	return nil
}

func get(url string) ([]byte, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s = %d", url, resp.StatusCode)
	}
	return body, resp.Header.Get("X-Cache"), nil
}

func post(url string, body []byte) ([]byte, string, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("POST %s = %d: %s", url, resp.StatusCode, out)
	}
	return out, resp.Header.Get("X-Cache"), nil
}
